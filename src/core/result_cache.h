// Content-addressed cache of completed fleet jobs.
//
// A fleet run is a pure function of its inputs, so a finished job never
// needs to execute twice: its FleetJobResult is frozen to a snapshot
// file (core/snapshot.h) and replayed on the next run. The cache is
// addressed two ways at once:
//
//   * the *filename* carries the job identity (browser, kind, shard),
//     so each planned job maps to exactly one candidate file, and
//   * the snapshot *header* carries a content fingerprint folding every
//     input that can change the job's bytes — schema version, framework
//     and catalog configuration, the full BrowserSpec, campaign kind
//     and options, shard geometry, the derived job seed (hence the base
//     seed and retry budget) and the chaos-profile fingerprint.
//
// A candidate whose fingerprint disagrees with the current plan is an
// *invalidation*: the file describes a job this run would compute
// differently, so it is ignored and the job re-executes. Changing one
// browser's spec therefore invalidates exactly that browser's jobs;
// changing the base seed or chaos profile invalidates everything —
// never silently reused, never over-invalidated.
//
// Writes are crash-safe: the snapshot lands in a temp file first and is
// renamed into place, so a killed run leaves either the complete old
// file or the complete new file, and `--resume` replays every job that
// finished before the kill.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "core/fleet.h"

namespace panoptes::core {

// Point-in-time cache accounting for the run manifest. hits + misses +
// invalidated = jobs probed; writes = snapshots persisted.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t writes = 0;
  uint64_t invalidated = 0;
};

class ResultCache {
 public:
  // Creates `dir` (and parents) if missing.
  explicit ResultCache(std::filesystem::path dir);

  const std::filesystem::path& dir() const { return dir_; }

  // Folds every execution-relevant input of `job` under `options` into
  // one 64-bit fingerprint. Pure function of its arguments.
  static uint64_t FingerprintJob(const FleetOptions& options,
                                 const FleetJob& job);

  // The single candidate file for `job`:
  // <dir>/<browser>_<kind>_shard<k>of<n>.snap (browser sanitized to
  // filename-safe characters).
  std::filesystem::path PathFor(const FleetJob& job) const;

  // Probes the cache for `job`. Returns the restored result on a hit;
  // nullopt on a miss (no file), an invalidation (stale fingerprint or
  // undecodable snapshot) or — when `skip_quarantined` is set — a
  // cached quarantine (resume semantics: a restarted run gives dead
  // jobs a fresh chance instead of replaying the failure). Accounting
  // and cache metrics are updated; thread-safe.
  std::optional<FleetJobResult> Load(const FleetJob& job,
                                     uint64_t fingerprint,
                                     bool skip_quarantined) const;

  // Persists `result` atomically (temp file + rename). Failures to
  // write are swallowed — the cache is an accelerator, never a
  // correctness dependency. Thread-safe.
  void Store(const FleetJobResult& result, uint64_t fingerprint) const;

  CacheStats Stats() const;

 private:
  std::filesystem::path dir_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> writes_{0};
  mutable std::atomic<uint64_t> invalidated_{0};
};

}  // namespace panoptes::core
