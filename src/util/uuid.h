// UUID generation for persistent browser/user identifiers.
//
// Yandex's persistent tracking identifier (paper §3.2) and the various
// installation/advertising IDs the browsers attach to native requests
// are modelled as UUIDs or opaque hex tokens drawn from a seeded PRNG.
#pragma once

#include <string>

#include "util/rng.h"

namespace panoptes::util {

// RFC 4122 version-4 layout, lowercase, e.g.
// "3f2b9a64-5e1c-4d7a-9b0e-2f6c8d1a7e43".
std::string GenerateUuid(Rng& rng);

// True if `s` has the 8-4-4-4-12 lowercase-hex UUID shape.
bool LooksLikeUuid(std::string_view s);

}  // namespace panoptes::util
