#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace panoptes::util {

namespace {

// Read from every fleet worker thread; atomic so a level change from
// one thread never races a concurrent log call on another.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::fprintf(stderr, "%-5s %s\n", LevelName(level), message.c_str());
}

}  // namespace panoptes::util
