#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace panoptes::util {

namespace {

// Read from every fleet worker thread; atomic so a level change from
// one thread never races a concurrent log call on another.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes sink swaps and every Write call: one line in, one line
// out, never torn between threads.
std::mutex& SinkMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

LogSink* g_sink = nullptr;  // guarded by SinkMutex(); nullptr = stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

// Default sink: the whole line leaves in a single fwrite so even
// without the mutex a line could not tear mid-way through libc.
class StderrSink : public LogSink {
 public:
  void Write(LogLevel, std::string_view line) override {
    std::string with_newline(line);
    with_newline += '\n';
    std::fwrite(with_newline.data(), 1, with_newline.size(), stderr);
  }
};

StderrSink& DefaultSink() {
  static StderrSink* sink = new StderrSink();
  return *sink;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

LogSink* SetLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink* previous = g_sink;
  g_sink = sink;
  return previous;
}

void LogLine(LogLevel level, const std::string& message) {
  if (!ShouldLog(level)) return;
  std::string line = LevelName(level);
  line.append(5 - line.size() + 1, ' ');  // "%-5s " alignment
  line += message;
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink* sink = g_sink != nullptr ? g_sink : &DefaultSink();
  sink->Write(level, line);
}

}  // namespace panoptes::util
