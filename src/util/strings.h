// String helpers shared across the Panoptes codebase.
//
// All functions are pure and allocate only when the signature returns an
// owning string. Inputs are taken as std::string_view.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace panoptes::util {

// Transparent hash for unordered containers keyed by std::string but
// probed with a string_view (C++20 heterogeneous lookup) — pair it with
// std::equal_to<>.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

// Returns `s` with ASCII uppercase letters folded to lowercase.
std::string ToLower(std::string_view s);

// Returns `s` with ASCII lowercase letters folded to uppercase.
std::string ToUpper(std::string_view s);

// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Splits `s` on every occurrence of `sep`. An empty input yields a single
// empty element, matching the usual "join . split == id" convention.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on `sep`, dropping empty pieces.
std::vector<std::string> SplitNonEmpty(std::string_view s, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view haystack, std::string_view needle);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// Replaces every non-overlapping occurrence of `from` with `to`.
// `from` must be non-empty.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

// Parses a non-negative decimal integer. Rejects empty input, sign
// characters, trailing garbage and overflow.
std::optional<uint64_t> ParseUint(std::string_view s);

// Formats `value` with `decimals` digits after the point (no locale).
std::string FormatDouble(double value, int decimals);

// Truncates `s` to at most `max_bytes` without splitting a UTF-8
// sequence: if the cut would land inside a multi-byte character, the
// whole character is dropped. Invalid UTF-8 is cut at the byte limit.
std::string_view TruncateUtf8(std::string_view s, size_t max_bytes);

// Percent-encodes bytes outside the RFC 3986 "unreserved" set.
std::string PercentEncode(std::string_view s);

// Decodes %XX escapes; malformed escapes are passed through verbatim.
std::string PercentDecode(std::string_view s);

}  // namespace panoptes::util
