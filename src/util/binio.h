// Bounds-checked little-endian binary encoding, the substrate of the
// job-snapshot format (core/snapshot.h).
//
// Snapshots are content-fingerprinted and compared byte-for-byte across
// machines, so the encoding is fixed-width, endian-pinned and never
// writes padding or in-memory representations directly. Readers are
// fail-soft: any underflow or oversized length poisons the reader
// (ok() goes false) and every subsequent read returns zero values, so
// decoding a truncated or corrupt file is safe without exceptions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace panoptes::util {

// Appends fixed-width little-endian values to an owned buffer.
class BinWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  // IEEE-754 bit pattern; bit-exact round trip.
  void F64(double v);
  // u32 byte length + raw bytes.
  void Str(std::string_view s);
  // Raw bytes, no length prefix — for blob payloads whose framing the
  // caller encodes separately (the arena FlowStore blits).
  void Raw(std::string_view bytes) { out_.append(bytes.data(), bytes.size()); }

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Cursor over an immutable byte buffer. The caller checks ok() once
// after decoding; individual reads never throw.
class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  bool Bool() { return U8() != 0; }
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();
  // `n` raw bytes as a view into the underlying buffer (valid while the
  // buffer lives); empty + poisoned on underflow.
  std::string_view Raw(size_t n) { return Bytes(n); }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  // Grabs `n` raw bytes, or poisons the reader.
  std::string_view Bytes(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace panoptes::util
