#include "util/multiscan.h"

#include <algorithm>

namespace panoptes::util {

MultiScan::MultiScan(std::vector<std::string> patterns, bool fold_ascii_case)
    : patterns_(std::move(patterns)), fold_(fold_ascii_case) {
  // Build trie with pooled storage: per node only the head of an edge
  // chain; edges and terminal (node, pattern) pairs live in two flat
  // vectors reserved once. Building a thousand-node automaton this way
  // costs a handful of allocations instead of a few per node.
  struct Edge {
    uint8_t byte;
    uint32_t target;
    int32_t next;  // next edge of the same source node, -1 at chain end
  };
  size_t total_bytes = 1;
  for (const auto& pattern : patterns_) total_bytes += pattern.size();
  std::vector<int32_t> edge_head;  // per node: first edge or -1
  edge_head.reserve(total_bytes);
  edge_head.push_back(-1);
  std::vector<Edge> edges;
  edges.reserve(total_bytes - 1);
  std::vector<std::pair<uint32_t, uint32_t>> terminals;  // (node, pattern)
  terminals.reserve(patterns_.size());

  auto find_kid = [&](uint32_t node, uint8_t c) -> uint32_t {
    for (int32_t e = edge_head[node]; e >= 0; e = edges[e].next) {
      if (edges[e].byte == c) return edges[e].target;
    }
    return 0;
  };

  for (uint32_t id = 0; id < patterns_.size(); ++id) {
    const std::string& pattern = patterns_[id];
    if (pattern.empty()) {
      empty_patterns_.push_back(id);
      continue;
    }
    uint32_t state = 0;
    for (char ch : pattern) {
      uint8_t c = static_cast<uint8_t>(ch);
      uint32_t next = find_kid(state, c);
      if (next == 0) {
        next = static_cast<uint32_t>(edge_head.size());
        edges.push_back(Edge{c, next, edge_head[state]});
        edge_head[state] = static_cast<int32_t>(edges.size() - 1);
        edge_head.push_back(-1);
      }
      state = next;
    }
    terminals.emplace_back(state, id);
  }
  node_count_ = static_cast<uint32_t>(edge_head.size());

  // Failure links, breadth-first: fail(child of u via c) is the state
  // reached from fail(u) on c, which BFS order guarantees is final.
  // The order is kept for the output-chain pass below.
  fail_.assign(node_count_, 0);
  std::vector<uint32_t> bfs_order;
  bfs_order.reserve(node_count_ - 1);
  for (int32_t e = edge_head[0]; e >= 0; e = edges[e].next) {
    bfs_order.push_back(edges[e].target);
  }
  for (size_t i = 0; i < bfs_order.size(); ++i) {
    uint32_t u = bfs_order[i];
    for (int32_t e = edge_head[u]; e >= 0; e = edges[e].next) {
      uint8_t c = edges[e].byte;
      uint32_t v = edges[e].target;
      uint32_t f = fail_[u];
      uint32_t target = 0;
      for (;;) {
        target = find_kid(f, c);
        if (target != 0 || f == 0) break;
        f = fail_[f];
      }
      fail_[v] = (target == v) ? 0 : target;
      bfs_order.push_back(v);
    }
  }

  // Flatten into the scan-time tables. Edge chains list a node's kids
  // in reverse insertion order; Child() probes linearly, so order is
  // irrelevant.
  child_begin_.assign(node_count_ + 1, 0);
  child_keys_.resize(edges.size());
  child_targets_.resize(edges.size());
  uint32_t cursor = 0;
  for (uint32_t s = 0; s < node_count_; ++s) {
    child_begin_[s] = cursor;
    for (int32_t e = edge_head[s]; e >= 0; e = edges[e].next) {
      child_keys_[cursor] = edges[e].byte;
      child_targets_[cursor] = edges[e].target;
      ++cursor;
    }
  }
  child_begin_[node_count_] = cursor;

  // Stable counting sort of terminals by node: terminals were recorded
  // in ascending pattern id, so each node's pattern list stays id-
  // ordered (duplicate patterns report in id order).
  pat_begin_.assign(node_count_ + 1, 0);
  for (const auto& [node, id] : terminals) ++pat_begin_[node + 1];
  for (uint32_t s = 0; s < node_count_; ++s) {
    pat_begin_[s + 1] += pat_begin_[s];
  }
  pat_ids_.resize(terminals.size());
  std::vector<uint32_t> fill(pat_begin_.begin(), pat_begin_.end() - 1);
  for (const auto& [node, id] : terminals) pat_ids_[fill[node]++] = id;

  // Output chains. Nodes were created in BFS-compatible order only for
  // the trie, not for fail links, so resolve ancestors first by walking
  // states in the BFS order recorded above.
  out_start_.assign(node_count_, 0);
  out_link_.assign(node_count_, 0);
  for (uint32_t s : bfs_order) {
    bool has_pat = pat_begin_[s + 1] > pat_begin_[s];
    out_start_[s] = has_pat ? s : out_start_[fail_[s]];
    if (has_pat) out_link_[s] = out_start_[fail_[s]];
  }

  // Root transition table and first-byte prefilter.
  int distinct_starts = 0;
  for (int32_t e = edge_head[0]; e >= 0; e = edges[e].next) {
    root_next_[edges[e].byte] = edges[e].target;
    root_mask_[edges[e].byte] = true;
    if (distinct_starts < kMaxStartBytes) {
      start_bytes_[distinct_starts] = edges[e].byte;
    }
    ++distinct_starts;
  }
  start_count_ =
      (!fold_ && distinct_starts <= kMaxStartBytes) ? distinct_starts : 0;
}

std::vector<MultiScan::Match> MultiScan::FindAll(
    std::string_view haystack) const {
  std::vector<Match> out;
  Scan(haystack, [&](uint32_t pattern, size_t end) {
    out.push_back(Match{pattern, end});
  });
  return out;
}

bool MultiScan::AnyMatch(std::string_view haystack) const {
  if (!empty_patterns_.empty()) return true;
  bool found = false;
  // The scan has no early exit hook; haystacks here are short enough
  // that finishing the pass costs less than structuring an unwind.
  Scan(haystack, [&](uint32_t, size_t) { found = true; });
  return found;
}

}  // namespace panoptes::util
