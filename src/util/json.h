// Minimal JSON value, writer and parser.
//
// Native browser telemetry in the paper is JSON (see Listing 1, the
// Opera oleads ad request). The vendors build JSON bodies and the PII
// scanner parses them back, so a small self-contained implementation is
// part of the substrate.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace panoptes::util {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps serialization order deterministic.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(int64_t i) : value_(static_cast<double>(i)) {}
  Json(uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  // Object member lookup; returns nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  // Compact serialization (no whitespace).
  std::string Dump() const;

  // Parses a complete JSON document; nullopt on any syntax error or
  // trailing garbage.
  static std::optional<Json> Parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

// Escapes a string for embedding in JSON output (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace panoptes::util
