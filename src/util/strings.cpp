#include "util/strings.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace panoptes::util {

namespace {

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

bool IsUnreserved(unsigned char c) {
  return std::isalnum(c) != 0 || c == '-' || c == '.' || c == '_' || c == '~';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(AsciiLower(c));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(AsciiUpper(c));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& piece : Split(s, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) {
      return true;
    }
  }
  return false;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  std::string out;
  if (from.empty()) return std::string(s);
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::optional<uint64_t> ParseUint(std::string_view s) {
  if (s.empty()) return std::nullopt;
  uint64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::string FormatDouble(double value, int decimals) {
  // std::to_chars, not snprintf: %f obeys LC_NUMERIC and would emit a
  // locale decimal comma, breaking the byte-determinism of every CSV
  // report (and with it, snapshot fingerprint validation).
  std::array<char, 64> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value,
                                 std::chars_format::fixed, decimals);
  if (ec != std::errc()) return {};
  return std::string(buf.data(), static_cast<size_t>(ptr - buf.data()));
}

std::string_view TruncateUtf8(std::string_view s, size_t max_bytes) {
  if (s.size() <= max_bytes) return s;
  // If the first excluded byte is a continuation byte (10xxxxxx), the
  // cut would split the sequence it belongs to; back up to that
  // sequence's lead byte and cut before it. UTF-8 sequences are at most
  // 4 bytes, so more than 3 continuation bytes means invalid input —
  // then the byte cut is as good as any.
  size_t cut = max_bytes;
  size_t back = 0;
  while (cut > 0 && back < 3 &&
         (static_cast<unsigned char>(s[cut]) & 0xC0) == 0x80) {
    --cut;
    ++back;
  }
  if ((static_cast<unsigned char>(s[cut]) & 0xC0) == 0x80) cut = max_bytes;
  return s.substr(0, cut);
}

std::string PercentEncode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (IsUnreserved(c)) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = HexValue(s[i + 1]);
      int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace panoptes::util
