#include "util/base64.h"

#include <array>
#include <cstdint>

namespace panoptes::util {

namespace {

constexpr char kStd[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr char kUrl[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::string EncodeWith(std::string_view data, const char* alphabet,
                       bool pad) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t v = (static_cast<uint8_t>(data[i]) << 16) |
                 (static_cast<uint8_t>(data[i + 1]) << 8) |
                 static_cast<uint8_t>(data[i + 2]);
    out.push_back(alphabet[(v >> 18) & 63]);
    out.push_back(alphabet[(v >> 12) & 63]);
    out.push_back(alphabet[(v >> 6) & 63]);
    out.push_back(alphabet[v & 63]);
    i += 3;
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t v = static_cast<uint8_t>(data[i]) << 16;
    out.push_back(alphabet[(v >> 18) & 63]);
    out.push_back(alphabet[(v >> 12) & 63]);
    if (pad) out.append("==");
  } else if (rest == 2) {
    uint32_t v = (static_cast<uint8_t>(data[i]) << 16) |
                 (static_cast<uint8_t>(data[i + 1]) << 8);
    out.push_back(alphabet[(v >> 18) & 63]);
    out.push_back(alphabet[(v >> 12) & 63]);
    out.push_back(alphabet[(v >> 6) & 63]);
    if (pad) out.push_back('=');
  }
  return out;
}

// -1: invalid, -2: padding.
int DecodeChar(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+' || c == '-') return 62;
  if (c == '/' || c == '_') return 63;
  if (c == '=') return -2;
  return -1;
}

}  // namespace

std::string Base64Encode(std::string_view data) {
  return EncodeWith(data, kStd, /*pad=*/true);
}

std::string Base64UrlEncode(std::string_view data) {
  return EncodeWith(data, kUrl, /*pad=*/false);
}

std::optional<std::string> Base64Decode(std::string_view data) {
  // Strip trailing padding.
  while (!data.empty() && data.back() == '=') data.remove_suffix(1);
  if (data.size() % 4 == 1) return std::nullopt;

  // Validate before allocating: callers probe arbitrary query values,
  // so the common outcome is rejection and the output buffer would be
  // a wasted malloc.
  for (char c : data) {
    if (DecodeChar(c) < 0) return std::nullopt;
  }

  std::string out;
  out.reserve(data.size() / 4 * 3 + 3);
  uint32_t acc = 0;
  int bits = 0;
  for (char c : data) {
    int v = DecodeChar(c);
    if (v < 0) return std::nullopt;  // '=' mid-stream also rejected here
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((acc >> bits) & 0xFF));
    }
  }
  return out;
}

bool LooksLikeBase64(std::string_view data) {
  return !data.empty() && Base64Decode(data).has_value();
}

}  // namespace panoptes::util
