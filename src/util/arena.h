// Bump allocator with chunked, address-stable storage.
//
// An Arena hands out raw byte ranges (and typed arrays) from a chain of
// malloc'd chunks. Chunks are never reallocated or freed before the
// arena itself is cleared or destroyed, so a pointer or string_view into
// the arena stays valid across any number of later allocations — the
// property FlowStore relies on to expose string_view accessors over
// flows while the store keeps growing. Moving an Arena moves the chunk
// chain (views survive); copying is deliberately disabled.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace panoptes::util {

class Arena {
 public:
  // `min_chunk` is the size of the first chunk; later chunks grow
  // geometrically (capped) so allocation count stays logarithmic in
  // total bytes.
  explicit Arena(size_t min_chunk = 4096) : min_chunk_(min_chunk) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized byte range of `n` bytes (unaligned). n == 0 returns a
  // non-null pointer into the current chunk.
  char* Alloc(size_t n);

  // Copies `bytes` into the arena and returns the stable view.
  std::string_view Copy(std::string_view bytes);

  // Uninitialized array of `n` trivially-destructible Ts, aligned for T.
  // The arena never runs destructors, hence the restriction.
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return reinterpret_cast<T*>(AllocAligned(n * sizeof(T), alignof(T)));
  }

  size_t bytes_used() const { return used_; }
  size_t bytes_reserved() const { return reserved_; }

  // The live chunk chain, in allocation order: base address and bytes
  // handed out per chunk. Every view the arena ever returned points
  // into one of these ranges — the property relocatable spill dumps
  // rely on to image a store as (chunk bytes, pointer fixup table).
  struct ChunkRef {
    const char* data;
    size_t used;
  };
  std::vector<ChunkRef> ChunkRefs() const;

  // Appends one fully-used chunk holding a copy of `src` and returns
  // its base. Used when replaying a relocatable dump: the copied image
  // keeps its internal offsets, so old views rebase by adding
  // (new base - old base). The current bump chunk is left alone;
  // later Allocs continue from a fresh chunk.
  char* AdoptBlock(const char* src, size_t n);

  // Frees every chunk. All views into the arena dangle after this.
  void Clear();

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t used = 0;
    size_t cap = 0;
  };

  char* AllocAligned(size_t n, size_t align);
  void AddChunk(size_t at_least);

  std::vector<Chunk> chunks_;
  size_t min_chunk_;
  size_t used_ = 0;      // bytes handed out (excludes alignment padding)
  size_t reserved_ = 0;  // bytes malloc'd
};

}  // namespace panoptes::util
