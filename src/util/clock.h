// Simulated time.
//
// Panoptes campaigns are timed (DOMContentLoaded + 5 s settle, 10-minute
// idle runs, Fig 5 timelines), so the whole stack runs on a manually
// advanced clock rather than wall time. Timestamps are milliseconds
// since the (simulated) Unix epoch.
#pragma once

#include <cstdint>
#include <string>

namespace panoptes::util {

// A point in simulated time, milliseconds since the Unix epoch.
struct SimTime {
  int64_t millis = 0;

  friend auto operator<=>(const SimTime&, const SimTime&) = default;
};

// A span of simulated time in milliseconds.
struct Duration {
  int64_t millis = 0;

  static constexpr Duration Millis(int64_t ms) { return Duration{ms}; }
  static constexpr Duration Seconds(int64_t s) { return Duration{s * 1000}; }
  static constexpr Duration Minutes(int64_t m) {
    return Duration{m * 60 * 1000};
  }

  double ToSecondsF() const { return static_cast<double>(millis) / 1000.0; }

  friend auto operator<=>(const Duration&, const Duration&) = default;
};

inline SimTime operator+(SimTime t, Duration d) {
  return SimTime{t.millis + d.millis};
}
inline Duration operator-(SimTime a, SimTime b) {
  return Duration{a.millis - b.millis};
}
inline Duration operator+(Duration a, Duration b) {
  return Duration{a.millis + b.millis};
}
inline Duration operator*(Duration d, int64_t k) {
  return Duration{d.millis * k};
}

// Manually advanced clock. The crawl driver owns one instance and every
// component that needs "now" holds a pointer to it.
class SimClock {
 public:
  // Starts at a fixed epoch matching the paper's crawl period (May 2023)
  // so that timestamps embedded in simulated requests look realistic.
  SimClock();
  explicit SimClock(SimTime start);

  SimTime Now() const { return now_; }
  void Advance(Duration d);

 private:
  SimTime now_;
};

// Monotonic wall-clock nanoseconds (std::chrono::steady_clock), for
// telemetry only. Deliberately separate from SimClock: spans and
// metrics measure the harness itself, so advancing simulated time must
// never move a telemetry timestamp (tests/obs_test.cpp pins this).
int64_t SteadyNowNanos();

// Formats a SimTime as "YYYY-MM-DDTHH:MM:SS.mmmZ" (proleptic Gregorian).
std::string FormatTimestamp(SimTime t);

// The Unix timestamp in whole seconds.
int64_t ToUnixSeconds(SimTime t);

}  // namespace panoptes::util
