#include "util/rng.h"

#include <cmath>
#include <cstring>

namespace panoptes::util {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t HashBytes64(std::string_view s) {
  // Mix one native-order word per step (wyhash-style multiply-fold),
  // then run the tail through the same path padded with the length so
  // "abc" and "abc\0" cannot collide trivially.
  uint64_t h = 0x9E3779B97F4A7C15ULL ^ (s.size() * 0x100000001B3ULL);
  size_t i = 0;
  for (; i + 8 <= s.size(); i += 8) {
    uint64_t w;
    std::memcpy(&w, s.data() + i, sizeof(w));
    w *= 0x9DDFEA08EB382D69ULL;
    w ^= w >> 29;
    h = (h ^ w) * 0xBF58476D1CE4E5B9ULL;
  }
  uint64_t tail = s.size();
  for (; i < s.size(); ++i) {
    tail = (tail << 8) | static_cast<unsigned char>(s[i]);
  }
  h ^= tail;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 32;
  return h;
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

Rng Rng::Fork(std::string_view label) {
  return Rng(NextU64() ^ HashString(label));
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::string Rng::NextToken(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return out;
}

std::string Rng::NextHex(size_t length) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kHex[NextBelow(16)]);
  }
  return out;
}

}  // namespace panoptes::util
