// Tiny leveled logger.
//
// Off (kWarn) by default so tests and benches stay quiet; examples turn
// on kInfo to narrate the crawl.
#pragma once

#include <sstream>
#include <string>

namespace panoptes::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one line to stderr if `level` passes the threshold.
void LogLine(LogLevel level, const std::string& message);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* tag) : level_(level) {
    stream_ << "[" << tag << "] ";
  }
  ~LogMessage() { LogLine(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace panoptes::util

#define PANOPTES_LOG(level, tag)                                       \
  ::panoptes::util::internal::LogMessage(::panoptes::util::LogLevel::level, \
                                         tag)                          \
      .stream()
