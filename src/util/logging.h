// Tiny leveled logger.
//
// Off (kWarn) by default so tests and benches stay quiet; examples turn
// on kInfo to narrate the crawl. The level check is a relaxed atomic on
// the fast path (and short-circuits message formatting entirely); line
// emission goes through a pluggable sink under a mutex so parallel
// fleet workers can never tear a line on stderr.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace panoptes::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// True when a message at `level` would be emitted (the atomic fast
// path; PANOPTES_LOG checks this before building the message).
inline bool ShouldLog(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(GetLogLevel());
}

// Destination for formatted log lines. Write receives one complete
// line — "LEVEL [tag] message", no trailing newline — and is always
// invoked under the logger's mutex, so implementations need no locking
// of their own and consecutive lines can never interleave.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, std::string_view line) = 0;
};

// Swaps the process sink; nullptr restores the stderr default. Returns
// the previous sink (nullptr when it was the default). The caller keeps
// ownership and must keep the sink alive until swapped back out.
LogSink* SetLogSink(LogSink* sink);

// Writes one line through the sink if `level` passes the threshold.
void LogLine(LogLevel level, const std::string& message);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* tag) : level_(level) {
    stream_ << "[" << tag << "] ";
  }
  ~LogMessage() { LogLine(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace panoptes::util

// The for-loop wrapper skips message formatting when the level is
// filtered, without the dangling-else hazard of an if-based macro.
#define PANOPTES_LOG(level, tag)                                            \
  for (bool panoptes_log_once =                                             \
           ::panoptes::util::ShouldLog(::panoptes::util::LogLevel::level);  \
       panoptes_log_once; panoptes_log_once = false)                        \
  ::panoptes::util::internal::LogMessage(::panoptes::util::LogLevel::level, \
                                         tag)                               \
      .stream()
