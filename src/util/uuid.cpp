#include "util/uuid.h"

namespace panoptes::util {

std::string GenerateUuid(Rng& rng) {
  std::string hex = rng.NextHex(32);
  // Set version (4) and variant (10xx) nibbles.
  hex[12] = '4';
  static constexpr char kVariant[] = "89ab";
  hex[16] = kVariant[rng.NextBelow(4)];

  std::string out;
  out.reserve(36);
  out.append(hex, 0, 8);
  out.push_back('-');
  out.append(hex, 8, 4);
  out.push_back('-');
  out.append(hex, 12, 4);
  out.push_back('-');
  out.append(hex, 16, 4);
  out.push_back('-');
  out.append(hex, 20, 12);
  return out;
}

bool LooksLikeUuid(std::string_view s) {
  if (s.size() != 36) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (s[i] != '-') return false;
    } else {
      char c = s[i];
      bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
      if (!hex) return false;
    }
  }
  return true;
}

}  // namespace panoptes::util
