#include "util/binio.h"

#include <bit>
#include <cstring>

namespace panoptes::util {

void BinWriter::U32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void BinWriter::U64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void BinWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void BinWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

std::string_view BinReader::Bytes(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

uint8_t BinReader::U8() {
  std::string_view bytes = Bytes(1);
  return ok_ ? static_cast<uint8_t>(bytes[0]) : 0;
}

uint32_t BinReader::U32() {
  std::string_view bytes = Bytes(4);
  if (!ok_) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return v;
}

uint64_t BinReader::U64() {
  std::string_view bytes = Bytes(8);
  if (!ok_) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return v;
}

double BinReader::F64() { return std::bit_cast<double>(U64()); }

std::string BinReader::Str() {
  uint32_t n = U32();
  // The length itself is untrusted input: a corrupt header must not
  // trigger a multi-gigabyte allocation before the bounds check.
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  return std::string(Bytes(n));
}

}  // namespace panoptes::util
