// Base64 codec (RFC 4648) — standard and URL-safe alphabets.
//
// Yandex encodes visited URLs in Base64 inside its phone-home requests
// (paper §3.2); the analysis pipeline must both produce and recognise
// such payloads.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace panoptes::util {

// Encodes with the standard alphabet ('+', '/') and '=' padding.
std::string Base64Encode(std::string_view data);

// Encodes with the URL-safe alphabet ('-', '_'), no padding.
std::string Base64UrlEncode(std::string_view data);

// Decodes either alphabet; padding optional. Returns nullopt on any
// character outside the alphabet or an impossible length (4n+1).
std::optional<std::string> Base64Decode(std::string_view data);

// True if `data` is non-empty and decodes successfully.
bool LooksLikeBase64(std::string_view data);

}  // namespace panoptes::util
