#include "util/args.h"

#include "util/strings.h"

namespace panoptes::util {

Args Args::Parse(int argc, const char* const* argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string_view token = argv[i];
    if (!StartsWith(token, "--")) {
      args.positional_.emplace_back(token);
      continue;
    }
    token.remove_prefix(2);
    size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      args.options_[std::string(token.substr(0, eq))] =
          std::string(token.substr(eq + 1));
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      args.options_[std::string(token)] = argv[++i];
    } else {
      args.options_[std::string(token)] = "";  // bare flag
    }
  }
  return args;
}

std::string Args::Positional(size_t index, std::string_view fallback) const {
  if (index < positional_.size()) return positional_[index];
  return std::string(fallback);
}

bool Args::HasFlag(std::string_view name) const {
  return options_.find(name) != options_.end();
}

std::optional<std::string> Args::Option(std::string_view name) const {
  auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Args::OptionOr(std::string_view name,
                           std::string_view fallback) const {
  auto value = Option(name);
  return value ? *value : std::string(fallback);
}

int64_t Args::IntOptionOr(std::string_view name, int64_t fallback) const {
  auto value = Option(name);
  if (!value) return fallback;
  auto parsed = ParseUint(*value);
  return parsed ? static_cast<int64_t>(*parsed) : fallback;
}

}  // namespace panoptes::util
