#include "util/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace panoptes::util {

namespace {

void DumpTo(const Json& v, std::string& out);

void DumpNumber(double d, std::string& out) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    // Integral values print without a decimal point.
    std::array<char, 32> buf{};
    int n = std::snprintf(buf.data(), buf.size(), "%lld",
                          static_cast<long long>(d));
    out.append(buf.data(), static_cast<size_t>(n));
  } else {
    // std::to_chars keeps the decimal separator a '.' under any
    // LC_NUMERIC — JSON reports must stay byte-identical across locales.
    std::array<char, 40> buf{};
    auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d,
                                   std::chars_format::general, 17);
    if (ec == std::errc()) {
      out.append(buf.data(), static_cast<size_t>(ptr - buf.data()));
    }
  }
}

void DumpTo(const Json& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    DumpNumber(v.as_number(), out);
  } else if (v.is_string()) {
    out += '"';
    out += JsonEscape(v.as_string());
    out += '"';
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const auto& item : v.as_array()) {
      if (!first) out += ',';
      first = false;
      DumpTo(item, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, value] : v.as_object()) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += JsonEscape(key);
      out += "\":";
      DumpTo(value, out);
    }
    out += '}';
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> ParseDocument() {
    auto v = ParseValue();
    if (!v) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  std::optional<Json> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    switch (c) {
      case 'n':
        return ConsumeWord("null") ? std::optional<Json>(Json(nullptr))
                                   : std::nullopt;
      case 't':
        return ConsumeWord("true") ? std::optional<Json>(Json(true))
                                   : std::nullopt;
      case 'f':
        return ConsumeWord("false") ? std::optional<Json>(Json(false))
                                    : std::nullopt;
      case '"': {
        auto s = ParseString();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        return ParseNumber();
    }
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return std::nullopt;
            }
            // Encode as UTF-8 (BMP only; surrogate pairs kept verbatim
            // as two code points — sufficient for telemetry payloads).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const char* begin = text_.data() + start;
    const char* end = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || begin == end) return std::nullopt;
    return Json(value);
  }

  std::optional<Json> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    JsonArray items;
    SkipWs();
    if (Consume(']')) return Json(std::move(items));
    while (true) {
      auto v = ParseValue();
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      SkipWs();
      if (Consume(']')) return Json(std::move(items));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    JsonObject obj;
    SkipWs();
    if (Consume('}')) return Json(std::move(obj));
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key) return std::nullopt;
      SkipWs();
      if (!Consume(':')) return std::nullopt;
      auto v = ParseValue();
      if (!v) return std::nullopt;
      obj[std::move(*key)] = std::move(*v);
      SkipWs();
      if (Consume('}')) return Json(std::move(obj));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, out);
  return out;
}

std::optional<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace panoptes::util
