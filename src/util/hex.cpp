#include "util/hex.h"

namespace panoptes::util {

namespace {

int Nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HexEncode(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (unsigned char c : data) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

std::optional<std::string> HexDecode(std::string_view data) {
  if (data.size() % 2 != 0) return std::nullopt;
  std::string out;
  out.reserve(data.size() / 2);
  for (size_t i = 0; i < data.size(); i += 2) {
    int hi = Nibble(data[i]);
    int lo = Nibble(data[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace panoptes::util
