#include "util/arena.h"

#include <algorithm>
#include <cstring>

namespace panoptes::util {

namespace {
// Chunks stop doubling here: one oversized store must not hold
// gigabyte chunks mostly empty.
constexpr size_t kMaxChunk = size_t{1} << 22;  // 4 MiB
}  // namespace

void Arena::AddChunk(size_t at_least) {
  size_t cap = chunks_.empty()
                   ? min_chunk_
                   : std::min(chunks_.back().cap * 2, kMaxChunk);
  cap = std::max(cap, at_least);
  Chunk chunk;
  chunk.data = std::make_unique<char[]>(cap);
  chunk.cap = cap;
  reserved_ += cap;
  chunks_.push_back(std::move(chunk));
}

char* Arena::Alloc(size_t n) {
  if (chunks_.empty() || chunks_.back().used + n > chunks_.back().cap) {
    AddChunk(n);
  }
  Chunk& chunk = chunks_.back();
  char* out = chunk.data.get() + chunk.used;
  chunk.used += n;
  used_ += n;
  return out;
}

char* Arena::AllocAligned(size_t n, size_t align) {
  if (!chunks_.empty()) {
    Chunk& chunk = chunks_.back();
    size_t aligned = (chunk.used + align - 1) & ~(align - 1);
    if (aligned + n <= chunk.cap) {
      chunk.used = aligned;
      char* out = chunk.data.get() + chunk.used;
      chunk.used += n;
      used_ += n;
      return out;
    }
  }
  // A fresh chunk is malloc'd, hence aligned for any fundamental type.
  AddChunk(n);
  Chunk& chunk = chunks_.back();
  char* out = chunk.data.get();
  chunk.used = n;
  used_ += n;
  return out;
}

std::vector<Arena::ChunkRef> Arena::ChunkRefs() const {
  std::vector<ChunkRef> out;
  out.reserve(chunks_.size());
  for (const Chunk& chunk : chunks_) {
    out.push_back(ChunkRef{chunk.data.get(), chunk.used});
  }
  return out;
}

char* Arena::AdoptBlock(const char* src, size_t n) {
  Chunk chunk;
  // make_unique<char[]> (operator new[]) returns storage aligned for
  // any fundamental type, like the original chunk base, so interior
  // objects (HeaderView arrays) keep their alignment at the same
  // offsets.
  chunk.data = std::make_unique<char[]>(n);
  chunk.cap = n;
  chunk.used = n;
  if (n > 0) std::memcpy(chunk.data.get(), src, n);
  reserved_ += n;
  used_ += n;
  char* base = chunk.data.get();
  chunks_.push_back(std::move(chunk));
  return base;
}

std::string_view Arena::Copy(std::string_view bytes) {
  char* out = Alloc(bytes.size());
  if (!bytes.empty()) std::memcpy(out, bytes.data(), bytes.size());
  return std::string_view(out, bytes.size());
}

void Arena::Clear() {
  chunks_.clear();
  used_ = 0;
  reserved_ = 0;
}

}  // namespace panoptes::util
