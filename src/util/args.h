// Minimal command-line parsing for the example binaries and the
// panoptes CLI: positional arguments plus --flag / --key=value /
// --key value options.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace panoptes::util {

class Args {
 public:
  // Parses argv (excluding argv[0]). Tokens starting with "--" become
  // options; everything else is positional.
  static Args Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  // Positional argument by index, or fallback when absent.
  std::string Positional(size_t index, std::string_view fallback = "") const;

  bool HasFlag(std::string_view name) const;

  std::optional<std::string> Option(std::string_view name) const;
  std::string OptionOr(std::string_view name,
                       std::string_view fallback) const;
  int64_t IntOptionOr(std::string_view name, int64_t fallback) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string, std::less<>> options_;
};

}  // namespace panoptes::util
