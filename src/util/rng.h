// Deterministic PRNG used everywhere randomness is needed.
//
// The reproduction regenerates every figure bit-identically, so all
// stochastic behaviour (site structure, request jitter, idle cadences)
// draws from seeded instances of this generator — never from global or
// wall-clock entropy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace panoptes::util {

// xoshiro256** seeded via splitmix64. Copyable; copies evolve
// independently.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Derives a child generator from this one plus a label, so independent
  // subsystems get decorrelated streams from one campaign seed.
  Rng Fork(std::string_view label);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // Random lowercase ASCII identifier of `length` characters.
  std::string NextToken(size_t length);

  // Random lowercase hex string of `length` characters.
  std::string NextHex(size_t length);

  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
};

// splitmix64 step, exposed for hashing labels into seeds.
uint64_t SplitMix64(uint64_t& state);

// Stable 64-bit hash of a string (FNV-1a), for seed derivation.
uint64_t HashString(std::string_view s);

// Fast 64-bit hash over bulk payloads, eight bytes per step — roughly
// 8x the throughput of HashString on large buffers. The digest reads
// words in native byte order, so it is stable within a machine but NOT
// across architectures: use it for same-host integrity checks (spill
// segment checksums), never for cross-platform pins or seed derivation.
uint64_t HashBytes64(std::string_view s);

}  // namespace panoptes::util
