// Hex codec used for opaque identifiers and payload dumps.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace panoptes::util {

// Lowercase hex encoding of raw bytes.
std::string HexEncode(std::string_view data);

// Decodes hex (either case). Requires even length; nullopt otherwise.
std::optional<std::string> HexDecode(std::string_view data);

}  // namespace panoptes::util
