// Multi-pattern substring search (Aho-Corasick).
//
// The analyzers used to probe every needle separately — the history-leak
// detector ran |visited|×2 substring searches per candidate text, the
// PII scanner 16 keyword probes per parameter key. A MultiScan automaton
// is built once per analyzer configuration and finds every occurrence of
// every pattern in a single pass over the haystack.
//
// Match semantics are those of the naive per-needle std::string::find
// oracle (the differential fuzz test pins this): a pattern occurs at
// every position where its bytes appear, duplicate patterns each report
// their own id, and the empty pattern occurs at every position 0..n.
// The callback order within one haystack position is
// longest-pattern-first (the suffix-chain order); across positions it is
// strictly increasing end offset.
//
// Scanning holds no mutable state, so one automaton may be shared by
// concurrently running analyzers.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace panoptes::util {

class MultiScan {
 public:
  struct Match {
    uint32_t pattern = 0;
    size_t end = 0;  // offset one past the occurrence's last byte
  };

  MultiScan() = default;

  // Builds the automaton. With `fold_ascii_case`, haystack bytes are
  // folded A-Z → a-z before matching (patterns must already be
  // lowercase), giving util::ContainsIgnoreCase semantics for ASCII.
  explicit MultiScan(std::vector<std::string> patterns,
                     bool fold_ascii_case = false);

  size_t pattern_count() const { return patterns_.size(); }
  const std::string& pattern(uint32_t id) const { return patterns_[id]; }
  bool empty() const { return patterns_.empty(); }

  // Calls fn(pattern_id, end_offset) for every occurrence.
  template <typename Fn>
  void Scan(std::string_view haystack, Fn&& fn) const {
    for (uint32_t id : empty_patterns_) {
      for (size_t end = 0; end <= haystack.size(); ++end) fn(id, end);
    }
    if (node_count_ <= 1 || haystack.empty()) return;
    const char* data = haystack.data();
    const size_t n = haystack.size();
    // First-byte prefilter: while at the root, hop straight to the next
    // byte that can leave it. With few viable start bytes (the common
    // case — every history-leak needle starts with 'h' or its Base64
    // form 'a') this is a handful of memchr calls instead of a per-byte
    // table loop. Each byte's next occurrence is cached so the combined
    // memchr work stays linear in the haystack.
    size_t next_start[kMaxStartBytes];
    for (int i = 0; i < start_count_; ++i) {
      const void* hit = std::memchr(data, start_bytes_[i], n);
      next_start[i] =
          hit ? static_cast<size_t>(static_cast<const char*>(hit) - data) : n;
    }
    uint32_t state = 0;
    for (size_t pos = 0; pos < n; ++pos) {
      if (state == 0) {
        if (start_count_ > 0) {
          size_t best = n;
          for (int i = 0; i < start_count_; ++i) {
            if (next_start[i] < pos) {
              const void* hit =
                  std::memchr(data + pos, start_bytes_[i], n - pos);
              next_start[i] =
                  hit ? static_cast<size_t>(static_cast<const char*>(hit) -
                                            data)
                      : n;
            }
            best = best < next_start[i] ? best : next_start[i];
          }
          if (best >= n) return;
          pos = best;
        } else {
          while (pos < n &&
                 !root_mask_[Fold(static_cast<uint8_t>(data[pos]))]) {
            ++pos;
          }
          if (pos >= n) return;
        }
        state = root_next_[Fold(static_cast<uint8_t>(data[pos]))];
      } else {
        uint8_t c = Fold(static_cast<uint8_t>(data[pos]));
        for (;;) {
          uint32_t next = Child(state, c);
          if (next != 0) {
            state = next;
            break;
          }
          state = fail_[state];
          if (state == 0) {
            state = root_next_[c];
            break;
          }
        }
      }
      for (uint32_t node = out_start_[state]; node != 0;
           node = out_link_[node]) {
        for (uint32_t i = pat_begin_[node]; i < pat_begin_[node + 1]; ++i) {
          fn(pat_ids_[i], pos + 1);
        }
      }
    }
  }

  std::vector<Match> FindAll(std::string_view haystack) const;
  bool AnyMatch(std::string_view haystack) const;

 private:
  uint8_t Fold(uint8_t c) const {
    return fold_ && c >= 'A' && c <= 'Z' ? static_cast<uint8_t>(c + 32) : c;
  }

  // Transition out of a non-root node, 0 when absent. Nodes have few
  // children; a linear scan over the sorted keys beats pointer-chasing.
  uint32_t Child(uint32_t node, uint8_t c) const {
    uint32_t begin = child_begin_[node];
    uint32_t end = child_begin_[node + 1];
    for (uint32_t i = begin; i < end; ++i) {
      if (child_keys_[i] == c) return child_targets_[i];
    }
    return 0;
  }

  std::vector<std::string> patterns_;
  std::vector<uint32_t> empty_patterns_;
  bool fold_ = false;
  uint32_t node_count_ = 1;

  // Root transitions, dense (0 = stay at root).
  uint32_t root_next_[256] = {};
  bool root_mask_[256] = {};
  // The distinct bytes patterns start with, when there are at most
  // kMaxStartBytes of them and no folding (memchr cannot fold);
  // start_count_ == 0 falls back to the root_mask_ loop.
  static constexpr int kMaxStartBytes = 4;
  uint8_t start_bytes_[kMaxStartBytes] = {};
  int start_count_ = 0;

  // Per-node tables (index 0 = root). child_begin_ and pat_begin_ carry
  // one extra sentinel entry.
  std::vector<uint32_t> fail_;
  std::vector<uint32_t> child_begin_;
  std::vector<uint8_t> child_keys_;
  std::vector<uint32_t> child_targets_;
  // out_start_[s]: deepest node on s's suffix chain (s included) with a
  // pattern, 0 if none; out_link_[s]: next such node strictly above.
  std::vector<uint32_t> out_start_;
  std::vector<uint32_t> out_link_;
  std::vector<uint32_t> pat_begin_;
  std::vector<uint32_t> pat_ids_;
};

}  // namespace panoptes::util
