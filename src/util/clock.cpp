#include "util/clock.h"

#include <array>
#include <chrono>
#include <cstdio>

namespace panoptes::util {

namespace {

// 2023-05-12T00:00:00Z — within the paper's crawl window (browser
// versions in Table 1 date to May 2023).
constexpr int64_t kDefaultEpochMillis = 1683849600000LL;

constexpr int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30,
                                 31, 31, 30, 31, 30, 31};

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

}  // namespace

SimClock::SimClock() : now_{kDefaultEpochMillis} {}

SimClock::SimClock(SimTime start) : now_(start) {}

void SimClock::Advance(Duration d) { now_.millis += d.millis; }

int64_t ToUnixSeconds(SimTime t) { return t.millis / 1000; }

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatTimestamp(SimTime t) {
  int64_t ms = t.millis % 1000;
  int64_t secs = t.millis / 1000;
  if (ms < 0) {
    ms += 1000;
    secs -= 1;
  }
  int64_t days = secs / 86400;
  int64_t rem = secs % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  int hour = static_cast<int>(rem / 3600);
  int minute = static_cast<int>((rem % 3600) / 60);
  int second = static_cast<int>(rem % 60);

  int year = 1970;
  while (true) {
    int len = IsLeap(year) ? 366 : 365;
    if (days < len) break;
    days -= len;
    ++year;
  }
  int month = 0;
  while (true) {
    int len = kDaysPerMonth[month] + ((month == 1 && IsLeap(year)) ? 1 : 0);
    if (days < len) break;
    days -= len;
    ++month;
  }

  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", year, month + 1,
                static_cast<int>(days) + 1, hour, minute, second,
                static_cast<int>(ms));
  return std::string(buf.data());
}

}  // namespace panoptes::util
