// Harness telemetry: the metrics registry.
//
// The measurement pipeline needs to be observable without perturbing
// the measurement itself. Counters, gauges and fixed-bucket histograms
// register once under a mutex and then mutate through lock-free
// atomics, so fleet workers can hammer them concurrently; values are
// exported as Prometheus text exposition or JSON. Telemetry is strictly
// additive — nothing here ever feeds an exported report, so fleet
// determinism holds with metrics on or off.
//
// Naming convention: panoptes_<layer>_<name>[_total|_seconds|_bytes].
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace panoptes::obs {

// Process-wide kill switch for the metric hot paths. On by default (an
// uncontended relaxed atomic add per event is far below the cost of the
// events being counted); bench/obs_overhead.cpp measures the delta.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (!internal::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (queue depth, workers busy).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!internal::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!internal::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. Bucket bounds are upper edges (Prometheus
// `le`); an implicit +Inf bucket catches the tail. Observation is one
// atomic add on the matching bucket plus count/sum updates.
class Histogram {
 public:
  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  // Cumulative count of observations <= bounds[i] (last entry = +Inf).
  std::vector<uint64_t> CumulativeBuckets() const;
  const std::vector<double>& bounds() const { return bounds_; }

  // Default latency edges: 1 ms .. ~100 s, quarter-decade spacing.
  static std::vector<double> LatencyBounds();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // ascending, without +Inf
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // bit-cast double, CAS-accumulated
};

// Owns named metrics. Registration (name lookup/creation) takes a
// mutex; the returned references stay valid for the registry's lifetime
// and mutate lock-free. Re-registering a name returns the existing
// metric; a name registered as one kind must not be requested as
// another (returns a detached dummy and logs nothing — callers follow
// the naming convention).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name, std::string_view help = "");
  Gauge& GetGauge(std::string_view name, std::string_view help = "");
  Histogram& GetHistogram(std::string_view name, std::string_view help = "",
                          std::vector<double> bounds = {});

  // Zeroes every value; registrations (and references) survive.
  void Reset();

  // Prometheus text exposition format, families sorted by name.
  std::string PrometheusText() const;

  // {"name": {"type": "...", "value": ...}, ...} via util::Json.
  util::Json ToJson() const;
  std::string JsonText() const { return ToJson().Dump(); }

  size_t MetricCount() const;

  // The process-wide registry every instrumented layer reports into.
  static MetricsRegistry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindLocked(std::string_view name);

  mutable std::mutex mutex_;
  // unique_ptr entries keep metric addresses stable across growth.
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace panoptes::obs
