#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace panoptes::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

namespace {

// Shortest round-trip double formatting; integral values print without
// a mantissa so counter samples look like counts.
std::string FormatNumber(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value > -1e15 && value < 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Prometheus text-format escaping. HELP lines escape backslash and
// newline; label values additionally escape the double quote. Emitting
// either verbatim corrupts the exposition format (a newline in a help
// string splits the line mid-comment; a quote in a label value
// terminates it early), which `validate-telemetry` then rejects.
std::string EscapeHelp(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeLabelValue(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '"': out += "\\\""; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::LatencyBounds() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
          0.25,  0.5,    1.0,   2.5,  5.0,   10.0, 25.0, 100.0};
}

void Histogram::Observe(double value) {
  if (!internal::g_metrics_enabled.load(std::memory_order_relaxed)) return;
  // First bound >= value; everything above the last bound lands in the
  // implicit +Inf bucket.
  size_t index =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Double accumulation via CAS on the bit pattern: lock-free and
  // TSan-clean (std::atomic<double>::fetch_add is C++20 but this stays
  // portable across libstdc++ versions).
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    uint64_t wanted =
        std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + value);
    if (sum_bits_.compare_exchange_weak(observed, wanted,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<uint64_t> Histogram::CumulativeBuckets() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  uint64_t running = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::FindLocked(std::string_view name) {
  for (auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* found = FindLocked(name); found != nullptr) {
    if (found->counter) return *found->counter;
    static Counter dummy;  // kind mismatch: detached, never exported
    return dummy;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = Kind::kCounter;
  entry->counter = std::unique_ptr<Counter>(new Counter());
  Counter& out = *entry->counter;
  entries_.push_back(std::move(entry));
  return out;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* found = FindLocked(name); found != nullptr) {
    if (found->gauge) return *found->gauge;
    static Gauge dummy;
    return dummy;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = Kind::kGauge;
  entry->gauge = std::unique_ptr<Gauge>(new Gauge());
  Gauge& out = *entry->gauge;
  entries_.push_back(std::move(entry));
  return out;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* found = FindLocked(name); found != nullptr) {
    if (found->histogram) return *found->histogram;
    static Histogram dummy{{1.0}};
    return dummy;
  }
  if (bounds.empty()) bounds = Histogram::LatencyBounds();
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = Kind::kHistogram;
  entry->histogram =
      std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
  Histogram& out = *entry->histogram;
  entries_.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->value_.store(0, std::memory_order_relaxed);
        break;
      case Kind::kGauge:
        entry->gauge->value_.store(0, std::memory_order_relaxed);
        break;
      case Kind::kHistogram: {
        Histogram& h = *entry->histogram;
        for (size_t i = 0; i <= h.bounds_.size(); ++i) {
          h.buckets_[i].store(0, std::memory_order_relaxed);
        }
        h.count_.store(0, std::memory_order_relaxed);
        h.sum_bits_.store(0, std::memory_order_relaxed);
        break;
      }
    }
  }
}

size_t MetricsRegistry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });

  std::string out;
  for (const Entry* entry : sorted) {
    if (!entry->help.empty()) {
      out += "# HELP " + entry->name + " " + EscapeHelp(entry->help) + "\n";
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out += "# TYPE " + entry->name + " counter\n";
        out += entry->name + " " +
               std::to_string(entry->counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + entry->name + " gauge\n";
        out += entry->name + " " + std::to_string(entry->gauge->Value()) +
               "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        out += "# TYPE " + entry->name + " histogram\n";
        auto cumulative = h.CumulativeBuckets();
        for (size_t i = 0; i < h.bounds_.size(); ++i) {
          out += entry->name + "_bucket{le=\"" +
                 EscapeLabelValue(FormatNumber(h.bounds_[i])) + "\"} " +
                 std::to_string(cumulative[i]) + "\n";
        }
        out += entry->name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative.back()) + "\n";
        out += entry->name + "_sum " + FormatNumber(h.Sum()) + "\n";
        out += entry->name + "_count " + std::to_string(h.Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

util::Json MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::JsonObject root;
  for (const auto& entry : entries_) {
    util::JsonObject metric;
    if (!entry->help.empty()) metric["help"] = entry->help;
    switch (entry->kind) {
      case Kind::kCounter:
        metric["type"] = "counter";
        metric["value"] = entry->counter->Value();
        break;
      case Kind::kGauge:
        metric["type"] = "gauge";
        metric["value"] = static_cast<int64_t>(entry->gauge->Value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        metric["type"] = "histogram";
        metric["count"] = h.Count();
        metric["sum"] = h.Sum();
        util::JsonArray bounds, buckets;
        auto cumulative = h.CumulativeBuckets();
        for (double bound : h.bounds()) bounds.emplace_back(bound);
        for (uint64_t value : cumulative) buckets.emplace_back(value);
        metric["le"] = std::move(bounds);
        metric["cumulative"] = std::move(buckets);
        break;
      }
    }
    root[entry->name] = std::move(metric);
  }
  return util::Json(std::move(root));
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace panoptes::obs
