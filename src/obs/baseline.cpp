#include "obs/baseline.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "util/json.h"

namespace panoptes::obs {

namespace {

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

// Flattens a report document into metric and checksum maps. Two shapes
// are accepted:
//   * bench reports: {"metrics": {name: number}, "checksums": {...}}
//   * obs::MetricsRegistry::ToJson(): {name: {"type":..., "value": n,
//     "count": n, ...}} — counters/gauges contribute "value",
//     histograms contribute "<name>_count".
struct FlatReport {
  std::map<std::string, double> metrics;
  std::map<std::string, std::string> checksums;
};

bool Flatten(const util::Json& doc, FlatReport* out, std::string* error) {
  if (!doc.is_object()) {
    *error = "top-level value is not an object";
    return false;
  }
  if (const util::Json* metrics = doc.Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    for (const auto& [name, value] : metrics->as_object()) {
      if (value.is_number()) out->metrics[name] = value.as_number();
    }
    if (const util::Json* sums = doc.Find("checksums");
        sums != nullptr && sums->is_object()) {
      for (const auto& [name, value] : sums->as_object()) {
        if (value.is_string()) out->checksums[name] = value.as_string();
      }
    }
    return true;
  }
  // Registry-export shape.
  for (const auto& [name, entry] : doc.as_object()) {
    if (!entry.is_object()) continue;
    if (const util::Json* value = entry.Find("value");
        value != nullptr && value->is_number()) {
      out->metrics[name] = value->as_number();
    } else if (const util::Json* count = entry.Find("count");
               count != nullptr && count->is_number()) {
      out->metrics[name + "_count"] = count->as_number();
    }
  }
  return true;
}

double ToleranceFor(const util::Json& baseline_doc, const std::string& name) {
  const util::Json* bands = baseline_doc.Find("tolerance");
  if (bands != nullptr && bands->is_object()) {
    if (const util::Json* exact = bands->Find(name);
        exact != nullptr && exact->is_number()) {
      return exact->as_number();
    }
    if (const util::Json* star = bands->Find("*");
        star != nullptr && star->is_number()) {
      return star->as_number();
    }
  }
  return BaselineGate::kDefaultTolerance;
}

}  // namespace

std::string BaselineResult::Render() const {
  std::string out;
  for (const std::string& error : errors) {
    out += "ERROR " + error + "\n";
  }
  for (const BaselineCheck& check : checks) {
    out += std::string(check.ok ? "ok   " : "FAIL ") + check.metric +
           " current=" + Num(check.current) +
           " baseline=" + Num(check.baseline) +
           " allowed_max=" + Num(check.allowed_max);
    if (!check.detail.empty()) out += " (" + check.detail + ")";
    out += "\n";
  }
  out += ok ? "baseline-gate: PASS\n" : "baseline-gate: FAIL\n";
  return out;
}

BaselineResult BaselineGate::Compare(std::string_view baseline_json,
                                     std::string_view current_json) {
  BaselineResult result;
  auto baseline_doc = util::Json::Parse(baseline_json);
  auto current_doc = util::Json::Parse(current_json);
  if (!baseline_doc.has_value()) {
    result.errors.push_back("baseline: JSON parse failed");
  }
  if (!current_doc.has_value()) {
    result.errors.push_back("current: JSON parse failed");
  }
  if (!result.errors.empty()) {
    result.ok = false;
    return result;
  }

  FlatReport baseline, current;
  std::string error;
  if (!Flatten(*baseline_doc, &baseline, &error)) {
    result.errors.push_back("baseline: " + error);
  }
  if (!Flatten(*current_doc, &current, &error)) {
    result.errors.push_back("current: " + error);
  }
  if (!result.errors.empty()) {
    result.ok = false;
    return result;
  }

  for (const auto& [name, base_value] : baseline.metrics) {
    BaselineCheck check;
    check.metric = name;
    check.baseline = base_value;
    auto found = current.metrics.find(name);
    if (found == current.metrics.end()) {
      check.ok = false;
      check.detail = "metric missing from current report";
      result.checks.push_back(std::move(check));
      continue;
    }
    check.current = found->second;
    double tolerance = ToleranceFor(*baseline_doc, name);
    if (tolerance <= 0) {
      check.allowed_max = base_value;
      check.ok = check.current == base_value;
      if (!check.ok) check.detail = "exact-match pin differs";
    } else if (base_value == 0) {
      // A relative band around zero is zero-width and would fail every
      // positive current. A zero baseline under a tolerance means "this
      // was too small to measure": accept any finite current and let
      // the next baseline refresh pin the real value.
      check.allowed_max = std::numeric_limits<double>::infinity();
      check.ok = std::isfinite(check.current);
      check.detail = check.ok ? "zero baseline: relative band skipped"
                              : "current is not finite";
    } else {
      check.allowed_max = base_value * (1.0 + tolerance);
      check.ok = std::isfinite(check.current) &&
                 check.current <= check.allowed_max;
      if (!check.ok) check.detail = "exceeds tolerance band";
    }
    result.checks.push_back(std::move(check));
  }

  for (const auto& [name, base_sum] : baseline.checksums) {
    BaselineCheck check;
    check.metric = "checksum:" + name;
    auto found = current.checksums.find(name);
    if (found == current.checksums.end()) {
      check.ok = false;
      check.detail = "checksum missing from current report";
    } else if (found->second != base_sum) {
      check.ok = false;
      check.detail = "expected " + base_sum + " got " + found->second;
    }
    result.checks.push_back(std::move(check));
  }

  for (const BaselineCheck& check : result.checks) {
    if (!check.ok) result.ok = false;
  }
  return result;
}

}  // namespace panoptes::obs
