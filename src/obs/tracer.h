// Harness telemetry: span tracing.
//
// Records begin/end spans (steady-clock timestamps, thread id, optional
// key=value attributes) into per-thread buffers and exports them as
// Chrome trace_event JSON — load the file in chrome://tracing or
// https://ui.perfetto.dev to see where a fleet run's wall-clock goes.
//
// Off by default: a disabled ScopedSpan is a single relaxed atomic load
// and no allocation. Timestamps come from util::SteadyNowNanos(), never
// the simulated clock, so sim-time advancement cannot move trace time.
// Export/Clear take every buffer's mutex, so they are safe to call even
// while workers record (each record holds only its own buffer's
// otherwise-uncontended mutex).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace panoptes::obs {

struct SpanEvent {
  std::string name;
  std::string category;
  int64_t start_ns = 0;  // steady clock
  int64_t duration_ns = 0;
  uint32_t tid = 0;  // tracer-assigned, dense from 1 in registration order
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends a finished span to the calling thread's buffer. `tid` is
  // assigned here.
  void Record(SpanEvent event);

  // All recorded spans, in (tid, record order) — including spans from
  // worker threads that have already exited (their buffers are retired
  // into the tracer at thread exit, so no tail spans are lost and the
  // dead thread's buffer memory is reclaimed). Copies; recording
  // threads may keep running.
  std::vector<SpanEvent> Snapshot() const;
  size_t EventCount() const;
  void Clear();

  // Chrome trace_event JSON ("X" complete events, microsecond units):
  // {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":...,"dur":...,
  //   "pid":1,"tid":...,"args":{...}},...]}
  std::string ChromeTraceJson() const;

  // The process-wide tracer every instrumented layer reports into.
  static Tracer& Default();

 private:
  friend struct TracerTlsCache;

  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<SpanEvent> events;
    uint32_t tid = 0;
  };

  ThreadBuffer* BufferForThisThread();

  // Called from the owning thread's TLS destructor: moves the buffer's
  // spans into retired_events_ and frees the buffer.
  void RetireBuffer(ThreadBuffer* buffer);

  std::atomic<bool> enabled_{false};
  const uint64_t tracer_id_;  // distinguishes tracers in the TLS cache
  mutable std::mutex mutex_;  // guards buffers_/retired_events_/next_tid_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  // Spans from threads that exited; tids stay stable, so Snapshot can
  // re-establish (tid, record order) with a stable sort.
  std::vector<SpanEvent> retired_events_;
  uint32_t next_tid_ = 1;  // dense, never reused across retirements
};

// RAII span: captures the start timestamp on construction (when the
// tracer is enabled) and records the completed span on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      std::string_view category = "panoptes",
                      Tracer& tracer = Tracer::Default());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a key=value attribute (no-op when the span is inactive).
  void Arg(std::string_view key, std::string_view value);
  void Arg(std::string_view key, int64_t value);

  bool active() const { return active_; }

 private:
  Tracer& tracer_;
  bool active_;
  SpanEvent event_;
};

}  // namespace panoptes::obs
