#include "obs/journal.h"

#include <cstdio>

#include "util/json.h"

namespace panoptes::obs {

namespace {

// Appends `value` quoted and escaped without building temporaries.
void AppendQuoted(std::string& out, std::string_view value) {
  out.push_back('"');
  // Fast path: most values (hosts, methods, browser names) need no
  // escaping at all.
  bool clean = true;
  for (char c : value) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      clean = false;
      break;
    }
  }
  if (clean) {
    out.append(value);
  } else {
    out.append(util::JsonEscape(value));
  }
  out.push_back('"');
}

}  // namespace

std::string FlowIdHex(uint64_t uid) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(uid));
  return buf;
}

void Journal::Append(const Journal& other) {
  const uint32_t field_base = static_cast<uint32_t>(fields_.size());
  const uint32_t char_base = static_cast<uint32_t>(chars_.size());
  events_.reserve(events_.size() + other.events_.size());
  for (JournalEvent event : other.events_) {
    event.field_begin += field_base;
    events_.push_back(event);
  }
  fields_.reserve(fields_.size() + other.fields_.size());
  for (Field field : other.fields_) {
    if (field.type == Field::Type::kStr) field.str_begin += char_base;
    fields_.push_back(field);
  }
  chars_.append(other.chars_);
}

void Journal::Clear() {
  events_.clear();
  fields_.clear();
  chars_.clear();
}

std::string Journal::EventJson(const JournalEvent& event) const {
  std::string out = "{";
  AppendEvent(out, event);
  return out;
}

std::string Journal::Jsonl() const {
  std::string out = "{\"journal_schema\":" +
                    std::to_string(kJournalSchemaVersion) +
                    ",\"events\":" + std::to_string(events_.size()) + "}\n";
  // ~96 bytes per line in practice; one up-front reservation keeps the
  // serialization loop nearly allocation-free.
  out.reserve(out.size() + events_.size() * 128);
  for (size_t seq = 0; seq < events_.size(); ++seq) {
    out.append("{\"seq\":");
    out.append(std::to_string(seq));
    out.push_back(',');
    AppendEvent(out, events_[seq]);
    out.push_back('\n');
  }
  return out;
}

void Journal::AppendEvent(std::string& out, const JournalEvent& event) const {
  out.append("\"t\":");
  out.append(std::to_string(event.sim_millis));
  out.append(",\"layer\":");
  AppendQuoted(out, event.layer);
  out.append(",\"kind\":");
  AppendQuoted(out, event.kind);
  ForEachField(event, [&out](const Field& field, std::string_view value) {
    out.push_back(',');
    AppendQuoted(out, field.key);
    out.push_back(':');
    switch (field.type) {
      case Field::Type::kStr:
        AppendQuoted(out, value);
        break;
      case Field::Type::kInt:
        out.append(std::to_string(static_cast<int64_t>(field.num)));
        break;
      case Field::Type::kUint:
        out.append(std::to_string(field.num));
        break;
      case Field::Type::kHex:
        out.push_back('"');
        out.append(FlowIdHex(field.num));
        out.push_back('"');
        break;
      case Field::Type::kBool:
        out.append(field.num != 0 ? "true" : "false");
        break;
    }
  });
  out.push_back('}');
}

}  // namespace panoptes::obs
