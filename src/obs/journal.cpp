#include "obs/journal.h"

#include <cstdio>

#include "util/json.h"

namespace panoptes::obs {

namespace {

// Appends `value` quoted and escaped without building temporaries.
void AppendQuoted(std::string& out, std::string_view value) {
  out.push_back('"');
  // Fast path: most values (hosts, methods, browser names) need no
  // escaping at all.
  bool clean = true;
  for (char c : value) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      clean = false;
      break;
    }
  }
  if (clean) {
    out.append(value);
  } else {
    out.append(util::JsonEscape(value));
  }
  out.push_back('"');
}

}  // namespace

std::string FlowIdHex(uint64_t uid) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(uid));
  return buf;
}

void Journal::Append(const Journal& other) {
  const uint32_t field_base = static_cast<uint32_t>(fields_.size());
  const uint32_t char_base = static_cast<uint32_t>(chars_.size());
  events_.reserve(events_.size() + other.events_.size());
  for (JournalEvent event : other.events_) {
    event.field_begin += field_base;
    events_.push_back(event);
  }
  fields_.reserve(fields_.size() + other.fields_.size());
  for (Field field : other.fields_) {
    if (field.type == Field::Type::kStr) field.str_begin += char_base;
    fields_.push_back(field);
  }
  chars_.append(other.chars_);
}

void Journal::Clear() {
  events_.clear();
  fields_.clear();
  chars_.clear();
}

std::string Journal::EventJson(const JournalEvent& event) const {
  std::string out = "{";
  AppendEvent(out, event);
  return out;
}

std::string Journal::Jsonl() const {
  std::string out = "{\"journal_schema\":" +
                    std::to_string(kJournalSchemaVersion) +
                    ",\"events\":" + std::to_string(events_.size()) + "}\n";
  // ~96 bytes per line in practice; one up-front reservation keeps the
  // serialization loop nearly allocation-free.
  out.reserve(out.size() + events_.size() * 128);
  for (size_t seq = 0; seq < events_.size(); ++seq) {
    out.append("{\"seq\":");
    out.append(std::to_string(seq));
    out.push_back(',');
    AppendEvent(out, events_[seq]);
    out.push_back('\n');
  }
  return out;
}

void Journal::AppendEvent(std::string& out, const JournalEvent& event) const {
  out.append("\"t\":");
  out.append(std::to_string(event.sim_millis));
  out.append(",\"layer\":");
  AppendQuoted(out, event.layer);
  out.append(",\"kind\":");
  AppendQuoted(out, event.kind);
  ForEachField(event, [&out](const Field& field, std::string_view value) {
    out.push_back(',');
    AppendQuoted(out, field.key);
    out.push_back(':');
    switch (field.type) {
      case Field::Type::kStr:
        AppendQuoted(out, value);
        break;
      case Field::Type::kInt:
        out.append(std::to_string(static_cast<int64_t>(field.num)));
        break;
      case Field::Type::kUint:
        out.append(std::to_string(field.num));
        break;
      case Field::Type::kHex:
        out.push_back('"');
        out.append(FlowIdHex(field.num));
        out.push_back('"');
        break;
      case Field::Type::kBool:
        out.append(field.num != 0 ? "true" : "false");
        break;
    }
  });
  out.push_back('}');
}

JournalValidation ValidateJournalJsonl(std::string_view jsonl) {
  JournalValidation out;
  size_t pos = jsonl.find('\n');
  if (pos == std::string_view::npos) {
    // No complete header line. An unterminated-but-parseable header is
    // still unusable: the event count cannot be trusted.
    out.error = "missing or unterminated header line";
    return out;
  }
  auto header = util::Json::Parse(jsonl.substr(0, pos));
  if (!header || !header->is_object() ||
      header->Find("journal_schema") == nullptr ||
      header->Find("events") == nullptr) {
    out.error = "malformed header line";
    return out;
  }
  if (static_cast<int>(header->Find("journal_schema")->as_number()) !=
      kJournalSchemaVersion) {
    out.error = "unsupported journal_schema";
    return out;
  }
  out.header_ok = true;
  out.declared_events =
      static_cast<size_t>(header->Find("events")->as_number());

  std::string_view rest = jsonl.substr(pos + 1);
  while (!rest.empty()) {
    size_t eol = rest.find('\n');
    const bool terminated = eol != std::string_view::npos;
    std::string_view line =
        terminated ? rest.substr(0, eol) : rest;
    rest = terminated ? rest.substr(eol + 1) : std::string_view();
    if (line.empty()) continue;

    std::string problem;
    auto event = util::Json::Parse(line);
    if (!event || !event->is_object()) {
      problem = "not a JSON object";
    } else {
      for (const char* key : {"seq", "t", "layer", "kind"}) {
        if (event->Find(key) == nullptr) {
          problem = std::string("missing \"") + key + "\"";
          break;
        }
      }
      // seq must be dense and 0-based — the merge-order fingerprint.
      if (problem.empty() &&
          static_cast<size_t>(event->Find("seq")->as_number()) !=
              out.valid_events) {
        problem = "out-of-order seq";
      }
    }
    if (!problem.empty()) {
      out.error = "event " + std::to_string(out.valid_events) + ": " + problem;
      // A bad *final* line is the signature of a mid-write cut: the
      // prefix stands. A bad line with more events after it is not a
      // cut — it is corruption.
      out.truncated = !terminated && rest.empty() &&
                      out.valid_events < out.declared_events;
      return out;
    }
    ++out.valid_events;
  }

  if (out.valid_events == out.declared_events) {
    out.ok = true;
  } else if (out.valid_events < out.declared_events) {
    // Cut exactly at a line boundary: every present line is valid but
    // the tail the header promised never made it to disk.
    out.truncated = true;
    out.error = "header declares " + std::to_string(out.declared_events) +
                " events, found " + std::to_string(out.valid_events);
  } else {
    out.error = "header declares " + std::to_string(out.declared_events) +
                " events, found " + std::to_string(out.valid_events);
  }
  return out;
}

}  // namespace panoptes::obs
