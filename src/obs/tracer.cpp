#include "obs/tracer.h"

#include <algorithm>
#include <unordered_map>

#include "util/clock.h"
#include "util/json.h"

namespace panoptes::obs {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

// Per-thread buffer cache, keyed by tracer id. Ids are never reused, so
// a stale entry for a destroyed tracer can never alias a live one.
thread_local std::unordered_map<uint64_t, void*> t_buffer_cache;

}  // namespace

Tracer::Tracer()
    : tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  auto cached = t_buffer_cache.find(tracer_id_);
  if (cached != t_buffer_cache.end()) {
    return static_cast<ThreadBuffer*>(cached->second);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
  ThreadBuffer* out = buffer.get();
  buffers_.push_back(std::move(buffer));
  t_buffer_cache[tracer_id_] = out;
  return out;
}

void Tracer::Record(SpanEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

std::vector<SpanEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanEvent> out;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<SpanEvent> events = Snapshot();
  // Chronological order makes the file diffable and the viewer happy.
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  util::JsonArray trace_events;
  trace_events.reserve(events.size());
  for (const SpanEvent& event : events) {
    util::JsonObject entry;
    entry["name"] = event.name;
    entry["cat"] = event.category;
    entry["ph"] = "X";
    entry["ts"] = static_cast<double>(event.start_ns) / 1000.0;
    entry["dur"] = static_cast<double>(event.duration_ns) / 1000.0;
    entry["pid"] = 1;
    entry["tid"] = static_cast<uint64_t>(event.tid);
    if (!event.args.empty()) {
      util::JsonObject args;
      for (const auto& [key, value] : event.args) args[key] = value;
      entry["args"] = std::move(args);
    }
    trace_events.push_back(util::Json(std::move(entry)));
  }
  util::JsonObject root;
  root["traceEvents"] = std::move(trace_events);
  root["displayTimeUnit"] = "ms";
  return util::Json(std::move(root)).Dump();
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category,
                       Tracer& tracer)
    : tracer_(tracer), active_(tracer.enabled()) {
  if (!active_) return;
  event_.name = std::string(name);
  event_.category = std::string(category);
  event_.start_ns = util::SteadyNowNanos();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  event_.duration_ns = util::SteadyNowNanos() - event_.start_ns;
  tracer_.Record(std::move(event_));
}

void ScopedSpan::Arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), std::string(value));
}

void ScopedSpan::Arg(std::string_view key, int64_t value) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), std::to_string(value));
}

}  // namespace panoptes::obs
