#include "obs/tracer.h"

#include <algorithm>
#include <unordered_map>

#include "util/clock.h"
#include "util/json.h"

namespace panoptes::obs {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

// Registry of live tracers, so a thread's TLS destructor can tell
// whether the tracer a cached buffer belongs to still exists. Ids are
// never reused, so a stale cache entry for a destroyed tracer can never
// alias a live one. Function-local static with intentional leak: TLS
// destructors of detached threads can run during process shutdown,
// after namespace-scope statics are destroyed.
struct LiveTracers {
  std::mutex mutex;
  std::unordered_map<uint64_t, Tracer*> map;
};

LiveTracers& Live() {
  static LiveTracers* live = new LiveTracers();
  return *live;
}

}  // namespace

// Per-thread buffer cache, keyed by tracer id. The destructor runs at
// thread exit and retires every cached buffer into its tracer (if the
// tracer is still alive), so spans recorded by worker threads that die
// before export are flushed instead of sitting in a dead thread's
// buffer — and the buffer memory is reclaimed. Lock order here is
// Live().mutex -> Tracer::mutex_; nothing takes them in the other
// order (~Tracer only takes Live().mutex, never while holding mutex_).
struct TracerTlsCache {
  std::unordered_map<uint64_t, void*> buffers;

  ~TracerTlsCache() {
    LiveTracers& live = Live();
    std::lock_guard<std::mutex> lock(live.mutex);
    for (const auto& [tracer_id, buffer] : buffers) {
      auto found = live.map.find(tracer_id);
      if (found == live.map.end()) continue;  // tracer died first
      found->second->RetireBuffer(
          static_cast<Tracer::ThreadBuffer*>(buffer));
    }
  }
};

namespace {
thread_local TracerTlsCache t_buffer_cache;
}  // namespace

Tracer::Tracer()
    : tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {
  LiveTracers& live = Live();
  std::lock_guard<std::mutex> lock(live.mutex);
  live.map[tracer_id_] = this;
}

Tracer::~Tracer() {
  LiveTracers& live = Live();
  std::lock_guard<std::mutex> lock(live.mutex);
  live.map.erase(tracer_id_);
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  auto cached = t_buffer_cache.buffers.find(tracer_id_);
  if (cached != t_buffer_cache.buffers.end()) {
    return static_cast<ThreadBuffer*>(cached->second);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = next_tid_++;
  ThreadBuffer* out = buffer.get();
  buffers_.push_back(std::move(buffer));
  t_buffer_cache.buffers[tracer_id_] = out;
  return out;
}

void Tracer::RetireBuffer(ThreadBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    retired_events_.insert(retired_events_.end(),
                           std::make_move_iterator(buffer->events.begin()),
                           std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
    if (it->get() == buffer) {
      buffers_.erase(it);
      break;
    }
  }
}

void Tracer::Record(SpanEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

std::vector<SpanEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanEvent> out = retired_events_;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  // Retirement order follows thread exit, not tid order; re-establish
  // (tid, record order) so export is independent of join timing.
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.tid < b.tid;
                   });
  return out;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = retired_events_.size();
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_events_.clear();
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<SpanEvent> events = Snapshot();
  // Chronological order makes the file diffable and the viewer happy.
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  util::JsonArray trace_events;
  trace_events.reserve(events.size());
  for (const SpanEvent& event : events) {
    util::JsonObject entry;
    entry["name"] = event.name;
    entry["cat"] = event.category;
    entry["ph"] = "X";
    entry["ts"] = static_cast<double>(event.start_ns) / 1000.0;
    entry["dur"] = static_cast<double>(event.duration_ns) / 1000.0;
    entry["pid"] = 1;
    entry["tid"] = static_cast<uint64_t>(event.tid);
    if (!event.args.empty()) {
      util::JsonObject args;
      for (const auto& [key, value] : event.args) args[key] = value;
      entry["args"] = std::move(args);
    }
    trace_events.push_back(util::Json(std::move(entry)));
  }
  util::JsonObject root;
  root["traceEvents"] = std::move(trace_events);
  root["displayTimeUnit"] = "ms";
  return util::Json(std::move(root)).Dump();
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category,
                       Tracer& tracer)
    : tracer_(tracer), active_(tracer.enabled()) {
  if (!active_) return;
  event_.name = std::string(name);
  event_.category = std::string(category);
  event_.start_ns = util::SteadyNowNanos();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  event_.duration_ns = util::SteadyNowNanos() - event_.start_ns;
  tracer_.Record(std::move(event_));
}

void ScopedSpan::Arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), std::string(value));
}

void ScopedSpan::Arg(std::string_view key, int64_t value) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), std::to_string(value));
}

}  // namespace panoptes::obs
