// Run observatory: machine-readable bench/telemetry baseline gate.
//
// Every bench binary emits a BENCH_<name>.json report (see
// bench/bench_common.h): a flat map of named scalar metrics (medians in
// microseconds, counts, ratios), optional output checksums, and the git
// revision that produced it. BaselineGate compares such a report — or a
// metrics JSON export from obs::MetricsRegistry — against a checked-in
// baseline file with per-metric tolerance bands, so CI fails when a
// hot path regresses beyond noise or a determinism checksum drifts.
//
// Comparison rules:
//   * every metric listed in the baseline must exist in the current
//     report (a vanished metric is a failure: the bench stopped
//     measuring something the baseline pins);
//   * timing metrics are lower-is-better: current must be <=
//     baseline * (1 + tolerance). Metrics whose baseline value is an
//     exact-match pin (tolerance 0, e.g. counts) must match exactly;
//   * checksums, when present in both files, must be byte-identical —
//     tolerance never applies to determinism;
//   * metrics present only in the current report are ignored (adding a
//     measurement is not a regression).
//
// Baseline files are the same schema as bench reports plus an optional
// "tolerance" object: {"*": 0.60, "specific_metric": 0.25}. The
// default band is deliberately loose (CI machines are noisy); the gate
// exists to catch step-function regressions, not 2% jitter.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace panoptes::obs {

// One comparison outcome. `ok == false` entries carry a human-readable
// reason in `detail`.
struct BaselineCheck {
  std::string metric;
  double baseline = 0;
  double current = 0;
  double allowed_max = 0;  // baseline * (1 + tolerance); = baseline when exact
  bool ok = true;
  std::string detail;
};

struct BaselineResult {
  bool ok = true;
  std::vector<BaselineCheck> checks;
  std::vector<std::string> errors;  // parse/schema failures

  // One line per check plus a PASS/FAIL trailer; stable order.
  std::string Render() const;
};

class BaselineGate {
 public:
  // Default tolerance band applied to metrics without an explicit
  // entry in the baseline's "tolerance" object.
  static constexpr double kDefaultTolerance = 0.60;

  // Compares a current bench/metrics JSON document against a baseline
  // JSON document (both as text). Never throws; malformed input lands
  // in `errors` with ok=false.
  static BaselineResult Compare(std::string_view baseline_json,
                                std::string_view current_json);
};

}  // namespace panoptes::obs
