// Run observatory: append-only structured event journal.
//
// Every layer of a fleet run — executor, campaign, chaos injector,
// proxy, flow store, analysis battery — can emit JournalEvents
// describing what happened: jobs starting and retrying, visits
// degrading, faults firing, flows opening and being persisted,
// analyzers producing findings. The journal is the audit trail that
// lets `panoptes_cli explain` walk a finding back to the exact flow,
// visit, attempt, and fault that produced it.
//
// Determinism contract: events are stamped with *simulated* time (and
// an explicit per-journal sequence number), never wall clock, and each
// fleet job records into its own private Journal which the executor
// merges in plan order. The merged JSONL is therefore byte-identical
// at any worker count — pinned by tests/obs_journal_test.cpp — and the
// journal is strictly additive: no report or snapshot byte changes
// whether it is enabled or not.
//
// Performance contract: emission sits on the proxy's per-flow hot path
// (three events per flow), so a journal stores its data in flat arenas
// — a POD event list, a POD field list, and one character blob for
// string values — and renders JSON only at serialization time. An
// enabled journal costs well under 2% of a fleet run's wall clock
// (bench/obs_overhead pins this); per-event emission does no
// formatting, no escaping, and no per-event allocation.
//
// A Journal is deliberately NOT thread-safe. The fleet gives each job
// its own instance (single-threaded within the job); anything that
// needs cross-thread journaling must shard the same way.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace panoptes::obs {

// Bumped whenever the line format or field vocabulary changes
// incompatibly; consumers check the header line.
inline constexpr int kJournalSchemaVersion = 1;

// One stored event: a fixed header plus a contiguous range in the
// owning journal's field arena. Layer and kind are string_views and
// MUST point at static-storage literals ("proxy", "flow_open", ...) —
// every call site does, and it is what keeps emission allocation-free.
struct JournalEvent {
  int64_t sim_millis = 0;      // simulated clock, never wall time
  std::string_view layer;      // "fleet", "campaign", "chaos", "proxy", ...
  std::string_view kind;       // "job_start", "visit_end", "fault", ...
  uint32_t field_begin = 0;    // index into Journal's field arena
  uint32_t field_count = 0;
};

// Renders a flow id the way the journal, reports and `explain` all
// print it: "0x" + 16 lowercase hex digits.
std::string FlowIdHex(uint64_t uid);

class Journal {
 public:
  // One field, stored unrendered. Keys are static-storage literals
  // (same contract as JournalEvent::layer/kind); string values are
  // copied into the journal's character arena.
  struct Field {
    enum class Type : uint8_t { kStr, kInt, kUint, kHex, kBool };
    std::string_view key;
    Type type = Type::kInt;
    uint64_t num = 0;        // kInt/kUint/kHex payload; kBool: 0/1
    uint32_t str_begin = 0;  // kStr payload range in the char arena
    uint32_t str_len = 0;
  };

  // Transient chaining handle returned by Emit. Valid only until the
  // next Emit on (or move of) the journal — use it immediately:
  //   journal.Emit(t, "proxy", "flow_open").Num("id", 7).Str("host", h);
  class EventRef {
   public:
    EventRef& Str(std::string_view key, std::string_view value) {
      Field& field = journal_->AddField(key, Field::Type::kStr);
      field.str_begin = static_cast<uint32_t>(journal_->chars_.size());
      field.str_len = static_cast<uint32_t>(value.size());
      journal_->chars_.append(value);
      return *this;
    }
    EventRef& Num(std::string_view key, int64_t value) {
      journal_->AddField(key, Field::Type::kInt).num =
          static_cast<uint64_t>(value);
      return *this;
    }
    EventRef& Num(std::string_view key, uint64_t value) {
      journal_->AddField(key, Field::Type::kUint).num = value;
      return *this;
    }
    // Flow ids render as fixed-width hex strings ("0x0123456789abcdef")
    // so they match the ids printed by reports and `explain`.
    EventRef& U64Hex(std::string_view key, uint64_t value) {
      journal_->AddField(key, Field::Type::kHex).num = value;
      return *this;
    }
    EventRef& BoolF(std::string_view key, bool value) {
      journal_->AddField(key, Field::Type::kBool).num = value ? 1 : 0;
      return *this;
    }

   private:
    friend class Journal;
    explicit EventRef(Journal* journal) : journal_(journal) {}
    Journal* journal_;
  };

  Journal() = default;
  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;
  // Copying is allowed (plain arena copies) so results holding a
  // journal stay copyable; it is never on a hot path.
  Journal(const Journal&) = default;
  Journal& operator=(const Journal&) = default;

  // Starts an event stamped at `sim_millis`; returns a chaining handle
  // for appending fields. `layer` and `kind` must be static-storage
  // literals (see JournalEvent).
  EventRef Emit(int64_t sim_millis, std::string_view layer,
                std::string_view kind) {
    events_.push_back(JournalEvent{sim_millis, layer, kind,
                                   static_cast<uint32_t>(fields_.size()), 0});
    return EventRef(this);
  }

  // Appends every event of `other`, rebasing arena offsets (used by
  // the executor to merge per-job journals in plan order).
  void Append(const Journal& other);

  const std::vector<JournalEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void Clear();

  // Invokes `fn(const Field&, std::string_view value)` for each field
  // of `event` in emission order (`value` is only meaningful for kStr).
  template <typename Fn>
  void ForEachField(const JournalEvent& event, Fn&& fn) const {
    for (uint32_t i = 0; i < event.field_count; ++i) {
      const Field& field = fields_[event.field_begin + i];
      fn(field, std::string_view(chars_).substr(field.str_begin,
                                                field.str_len));
    }
  }

  // One event rendered as a JSONL line, keys in fixed order: t, layer,
  // kind, then fields in emission order. No trailing newline.
  std::string EventJson(const JournalEvent& event) const;

  // The full journal as JSONL: a header line carrying the schema
  // version and event count, then one line per event with a dense
  // 0-based "seq" field. Byte-deterministic for a given event list.
  std::string Jsonl() const;

 private:
  // Renders `event` (everything after the opening '{') into `out`.
  void AppendEvent(std::string& out, const JournalEvent& event) const;

  Field& AddField(std::string_view key, Field::Type type) {
    fields_.push_back(Field{key, type, 0, 0, 0});
    ++events_.back().field_count;
    return fields_.back();
  }

  std::vector<JournalEvent> events_;
  std::vector<Field> fields_;  // all events' fields, contiguous per event
  std::string chars_;          // kStr field values, back to back
};

// Structural validation of a serialized journal (Jsonl() output).
// Fail-soft: a journal cut off mid-write — a partial final line, or a
// clean cut at a line boundary before the declared event count — is
// reported as `truncated` with the length of the valid prefix, so a
// crashed run's journal still yields its recorded events instead of a
// blanket "corrupt". Anything wrong *before* the cut (bad header, a
// malformed or out-of-order event with more events after it) is hard
// corruption: `ok` and `truncated` both false.
struct JournalValidation {
  bool ok = false;         // fully valid: header + declared events, in order
  bool header_ok = false;
  bool truncated = false;  // valid prefix, then the file just stops
  size_t valid_events = 0;    // events validated before the first problem
  size_t declared_events = 0; // from the header line
  std::string error;          // first structural problem; empty when ok
};

JournalValidation ValidateJournalJsonl(std::string_view jsonl);

}  // namespace panoptes::obs
