#include "chaos/profile.h"

#include <cstring>

#include "util/json.h"
#include "util/rng.h"
#include "util/strings.h"

namespace panoptes::chaos {

namespace {

uint64_t MixDouble(uint64_t state, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  state ^= bits;
  return util::SplitMix64(state);
}

uint64_t MixInt(uint64_t state, int64_t value) {
  state ^= static_cast<uint64_t>(value) * 0x9E3779B97F4A7C15ull;
  return util::SplitMix64(state);
}

double NumberOr(const util::Json& json, const char* key, double fallback) {
  const util::Json* value = json.Find(key);
  if (value == nullptr || !value->is_number()) return fallback;
  return value->as_number();
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDnsFailure: return "dns-failure";
    case FaultKind::kDnsDeadHost: return "dns-dead-host";
    case FaultKind::kTlsDrop: return "tls-drop";
    case FaultKind::kServerError: return "server-error";
    case FaultKind::kServerTimeout: return "server-timeout";
    case FaultKind::kUpstreamReset: return "upstream-reset";
    case FaultKind::kLatencySpike: return "latency-spike";
    case FaultKind::kFlowWriteDrop: return "flow-write-drop";
    case FaultKind::kSpillIo: return "spill-io";
  }
  return "?";
}

std::optional<FaultKind> ParseFaultKind(std::string_view name) {
  for (size_t i = 0; i < kFaultKindCount; ++i) {
    FaultKind kind = static_cast<FaultKind>(i);
    if (FaultKindName(kind) == name) return kind;
  }
  return std::nullopt;
}

bool FaultProfile::Enabled() const {
  return dns_failure_p > 0 || !dead_hosts.empty() || tls_drop_p > 0 ||
         server_error_p > 0 || server_timeout_p > 0 ||
         upstream_reset_p > 0 || latency_spike_p > 0 ||
         flow_write_drop_p > 0 || spill_io_p > 0;
}

uint64_t FaultProfile::Fingerprint() const {
  uint64_t state = util::HashString(name);
  state = MixDouble(state, dns_failure_p);
  for (const auto& host : dead_hosts) {
    state ^= util::HashString(host);
    util::SplitMix64(state);
  }
  state = MixDouble(state, tls_drop_p);
  state = MixDouble(state, server_error_p);
  state = MixInt(state, server_error_episode);
  state = MixDouble(state, server_timeout_p);
  state = MixInt(state, server_timeout.millis);
  state = MixDouble(state, upstream_reset_p);
  state = MixDouble(state, latency_spike_p);
  state = MixInt(state, latency_spike.millis);
  state = MixDouble(state, flow_write_drop_p);
  state = MixDouble(state, spill_io_p);
  return state;
}

std::string FaultProfile::ToJson() const {
  util::JsonObject root;
  root["name"] = name;
  root["dns_failure_p"] = dns_failure_p;
  util::JsonArray dead;
  for (const auto& host : dead_hosts) dead.emplace_back(host);
  root["dead_hosts"] = std::move(dead);
  root["tls_drop_p"] = tls_drop_p;
  root["server_error_p"] = server_error_p;
  root["server_error_episode"] =
      static_cast<int64_t>(server_error_episode);
  root["server_timeout_p"] = server_timeout_p;
  root["server_timeout_millis"] = server_timeout.millis;
  root["upstream_reset_p"] = upstream_reset_p;
  root["latency_spike_p"] = latency_spike_p;
  root["latency_spike_millis"] = latency_spike.millis;
  root["flow_write_drop_p"] = flow_write_drop_p;
  root["spill_io_p"] = spill_io_p;
  return util::Json(std::move(root)).Dump();
}

std::optional<FaultProfile> FaultProfile::FromJson(std::string_view text) {
  auto parsed = util::Json::Parse(text);
  if (!parsed || !parsed->is_object()) return std::nullopt;

  FaultProfile profile;
  if (const auto* name = parsed->Find("name");
      name != nullptr && name->is_string()) {
    profile.name = name->as_string();
  } else {
    profile.name = "custom";
  }
  profile.dns_failure_p = NumberOr(*parsed, "dns_failure_p", 0);
  if (const auto* dead = parsed->Find("dead_hosts");
      dead != nullptr && dead->is_array()) {
    for (const auto& host : dead->as_array()) {
      if (!host.is_string()) return std::nullopt;
      profile.dead_hosts.push_back(util::ToLower(host.as_string()));
    }
  }
  profile.tls_drop_p = NumberOr(*parsed, "tls_drop_p", 0);
  profile.server_error_p = NumberOr(*parsed, "server_error_p", 0);
  profile.server_error_episode = static_cast<int>(
      NumberOr(*parsed, "server_error_episode", 1));
  if (profile.server_error_episode < 1) profile.server_error_episode = 1;
  profile.server_timeout_p = NumberOr(*parsed, "server_timeout_p", 0);
  profile.server_timeout = util::Duration::Millis(static_cast<int64_t>(
      NumberOr(*parsed, "server_timeout_millis", 10000)));
  profile.upstream_reset_p = NumberOr(*parsed, "upstream_reset_p", 0);
  profile.latency_spike_p = NumberOr(*parsed, "latency_spike_p", 0);
  profile.latency_spike = util::Duration::Millis(static_cast<int64_t>(
      NumberOr(*parsed, "latency_spike_millis", 1500)));
  profile.flow_write_drop_p = NumberOr(*parsed, "flow_write_drop_p", 0);
  profile.spill_io_p = NumberOr(*parsed, "spill_io_p", 0);

  for (double p :
       {profile.dns_failure_p, profile.tls_drop_p, profile.server_error_p,
        profile.server_timeout_p, profile.upstream_reset_p,
        profile.latency_spike_p, profile.flow_write_drop_p,
        profile.spill_io_p}) {
    if (p < 0 || p > 1) return std::nullopt;
  }
  return profile;
}

std::optional<FaultProfile> FaultProfile::Named(std::string_view name) {
  FaultProfile profile;
  if (name == "none") {
    profile.name = "none";
    return profile;
  }
  if (name == "flaky") {
    // The everyday-broken internet: a few percent of everything.
    profile.name = "flaky";
    profile.dns_failure_p = 0.03;
    profile.tls_drop_p = 0.01;
    profile.server_error_p = 0.03;
    profile.server_error_episode = 2;
    profile.server_timeout_p = 0.005;
    profile.upstream_reset_p = 0.01;
    profile.latency_spike_p = 0.02;
    profile.flow_write_drop_p = 0.002;
    return profile;
  }
  if (name == "dns-storm") {
    profile.name = "dns-storm";
    profile.dns_failure_p = 0.25;
    return profile;
  }
  if (name == "vendor-5xx") {
    profile.name = "vendor-5xx";
    profile.server_error_p = 0.2;
    profile.server_error_episode = 5;
    return profile;
  }
  if (name == "blackout") {
    // Every name dead: the fully-dead-host quarantine scenario.
    profile.name = "blackout";
    profile.dead_hosts = {"*"};
    return profile;
  }
  return std::nullopt;
}

std::vector<std::string> FaultProfile::NamedProfiles() {
  return {"none", "flaky", "dns-storm", "vendor-5xx", "blackout"};
}

bool HostMatchesAny(std::string_view host,
                    const std::vector<std::string>& patterns) {
  for (const auto& pattern : patterns) {
    if (pattern == "*") return true;
    if (util::StartsWith(pattern, "*.")) {
      std::string_view suffix = std::string_view(pattern).substr(2);
      if (host == suffix) return true;
      if (host.size() > suffix.size() &&
          util::EndsWith(host, suffix) &&
          host[host.size() - suffix.size() - 1] == '.') {
        return true;
      }
      continue;
    }
    if (host == pattern) return true;
  }
  return false;
}

}  // namespace panoptes::chaos
