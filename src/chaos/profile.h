// Deterministic chaos: fault kinds and fault profiles.
//
// Real crawls are dominated by partial failure — DNS outages, vendor
// 5xx storms, pinned connections, mid-crawl resets. A FaultProfile
// describes *how broken* the simulated internet should be; the
// Injector (injector.h) turns a (seed, profile) pair into a replayable
// fault timeline. Profiles are pure data: the same profile and seed
// always produce the same faults, so chaos runs stay byte-identical
// under the fleet determinism contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace panoptes::chaos {

// Everything the injector knows how to break, named for logs, metrics
// and the run manifest.
enum class FaultKind {
  kDnsFailure,      // transient SERVFAIL on a lookup
  kDnsDeadHost,     // permanent outage (dead_hosts match)
  kTlsDrop,         // TLS handshake dropped mid-flight
  kServerError,     // origin answers 5xx (episodic)
  kServerTimeout,   // origin never answers inside the budget
  kUpstreamReset,   // proxy-to-origin connection reset
  kLatencySpike,    // exchange RTT multiplied by a spike
  kFlowWriteDrop,   // flow database write fault (record lost)
  kSpillIo,         // spill-segment write/read I/O fault
};

inline constexpr size_t kFaultKindCount = 9;

// Response header stamped onto every chaos-synthesized HTTP response
// (injected 5xx, upstream resets). The proxy uses it to tag the flow so
// downstream analysis can always tell an injected failure from genuine
// browser traffic — no fabricated findings from broken runs.
inline constexpr std::string_view kInjectedFaultHeader = "x-chaos-injected";

std::string_view FaultKindName(FaultKind kind);
std::optional<FaultKind> ParseFaultKind(std::string_view name);

// Per-kind fault rates and shapes. All probabilities are per-event
// (per lookup, per handshake, per delivery, per store write); zero
// disables the kind. `dead_hosts` supports exact names, "*.suffix"
// patterns and the catch-all "*".
struct FaultProfile {
  std::string name = "none";

  double dns_failure_p = 0;
  std::vector<std::string> dead_hosts;
  double tls_drop_p = 0;
  double server_error_p = 0;
  // Consecutive deliveries to the same host that fail once a server
  // error fires (a 5xx "episode" rather than isolated blips).
  int server_error_episode = 1;
  double server_timeout_p = 0;
  util::Duration server_timeout = util::Duration::Seconds(10);
  double upstream_reset_p = 0;
  double latency_spike_p = 0;
  util::Duration latency_spike = util::Duration::Millis(1500);
  double flow_write_drop_p = 0;
  double spill_io_p = 0;

  // True when any fault can ever fire.
  bool Enabled() const;

  // Stable 64-bit digest of every field, mixed into the injector seed
  // so distinct profiles produce distinct fault timelines even at the
  // same base seed.
  uint64_t Fingerprint() const;

  std::string ToJson() const;
  static std::optional<FaultProfile> FromJson(std::string_view text);

  // Built-in presets: "none", "flaky", "dns-storm", "vendor-5xx",
  // "blackout". Unknown names return nullopt.
  static std::optional<FaultProfile> Named(std::string_view name);
  static std::vector<std::string> NamedProfiles();
};

// True when `host` matches any dead-host pattern in `patterns`.
bool HostMatchesAny(std::string_view host,
                    const std::vector<std::string>& patterns);

}  // namespace panoptes::chaos
