#include "chaos/injector.h"

#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/strings.h"

namespace panoptes::chaos {

namespace {

obs::Counter& FaultsInjectedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "panoptes_chaos_faults_injected_total",
      "Faults injected by the chaos subsystem across all kinds");
  return counter;
}

}  // namespace

Injector::Injector(uint64_t seed, FaultProfile profile,
                   const util::SimClock* clock)
    : seed_(seed ^ profile.Fingerprint()),
      profile_(std::move(profile)),
      clock_(clock) {}

uint64_t Injector::CountFor(FaultKind kind) const {
  return counts_[static_cast<size_t>(kind)];
}

void Injector::Record(FaultKind kind, std::string_view host) {
  FaultEvent event;
  event.kind = kind;
  event.host = std::string(host);
  event.sim_millis = clock_ != nullptr ? clock_->Now().millis : 0;
  if (journal_ != nullptr) {
    journal_->Emit(event.sim_millis, "chaos", "fault")
        .Str("fault_kind", FaultKindName(kind))
        .Str("host", host);
  }
  events_.push_back(std::move(event));
  ++counts_[static_cast<size_t>(kind)];
  FaultsInjectedCounter().Inc();
}

bool Injector::Draw(FaultKind kind, std::string_view host, double p,
                    int episode_length) {
  if (p <= 0) return false;
  // Per-(kind, host) state keeps decision streams independent across
  // hosts and fault points: the n-th DNS lookup of a given host gets
  // the same verdict no matter what happened to other hosts first.
  std::string key = std::string(FaultKindName(kind)) + "|";
  key += util::ToLower(host);
  Slot& slot = slots_[key];
  if (slot.episode_left > 0) {
    --slot.episode_left;
    Record(kind, host);
    return true;
  }
  ++slot.draws;
  uint64_t state = seed_;
  state ^= util::HashString(key);
  util::SplitMix64(state);
  state ^= slot.draws * 0x9E3779B97F4A7C15ull;
  uint64_t bits = util::SplitMix64(state);
  double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  if (u >= p) return false;
  if (episode_length > 1) slot.episode_left = episode_length - 1;
  Record(kind, host);
  return true;
}

bool Injector::DnsFault(std::string_view host) {
  if (HostMatchesAny(util::ToLower(host), profile_.dead_hosts)) {
    Record(FaultKind::kDnsDeadHost, host);
    return true;
  }
  return Draw(FaultKind::kDnsFailure, host, profile_.dns_failure_p);
}

bool Injector::TlsDrop(std::string_view host) {
  return Draw(FaultKind::kTlsDrop, host, profile_.tls_drop_p);
}

bool Injector::ServerError(std::string_view host) {
  return Draw(FaultKind::kServerError, host, profile_.server_error_p,
              profile_.server_error_episode);
}

bool Injector::ServerTimeout(std::string_view host) {
  return Draw(FaultKind::kServerTimeout, host, profile_.server_timeout_p);
}

bool Injector::UpstreamReset(std::string_view host) {
  return Draw(FaultKind::kUpstreamReset, host, profile_.upstream_reset_p);
}

bool Injector::FlowWriteDrop(std::string_view host) {
  return Draw(FaultKind::kFlowWriteDrop, host, profile_.flow_write_drop_p);
}

bool Injector::SpillIoFault(std::string_view label) {
  return Draw(FaultKind::kSpillIo, label, profile_.spill_io_p);
}

util::Duration Injector::LatencySpike(std::string_view host) {
  if (Draw(FaultKind::kLatencySpike, host, profile_.latency_spike_p)) {
    return profile_.latency_spike;
  }
  return util::Duration{0};
}

}  // namespace panoptes::chaos
