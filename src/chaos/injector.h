// The deterministic fault injector.
//
// One Injector lives inside each Framework (one per fleet job) and is
// consulted from every layer that can break: the DNS zone, the network
// fabric's delivery path, the device send path, the MITM proxy and the
// flow databases. Decisions are a pure function of
// (seed, profile, fault point, host, per-point event counter) — never
// of wall clock, thread identity or cross-job state — so a chaos run
// replays bit-identically for the same (base_seed, profile), whatever
// `--jobs` says. Every fault that fires is appended to an in-order
// event log that the fleet layer folds into the RunManifest.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/profile.h"
#include "util/clock.h"

namespace panoptes::obs {
class Journal;
}  // namespace panoptes::obs

namespace panoptes::chaos {

// One injected fault, as recorded for the run manifest. Times are
// simulated (SimClock) — wall clock never enters exported artifacts.
struct FaultEvent {
  FaultKind kind = FaultKind::kDnsFailure;
  std::string host;
  int64_t sim_millis = 0;
};

class Injector {
 public:
  // `clock` stamps fault events with simulated time; may be null (events
  // then carry time 0).
  Injector(uint64_t seed, FaultProfile profile,
           const util::SimClock* clock = nullptr);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  const FaultProfile& profile() const { return profile_; }

  // Decision points, one per layer. Each returns true (and logs the
  // fault) when the fault fires for this event.
  bool DnsFault(std::string_view host);        // dead host or transient
  bool TlsDrop(std::string_view host);
  bool ServerError(std::string_view host);     // episodic 5xx
  bool ServerTimeout(std::string_view host);
  bool UpstreamReset(std::string_view host);
  bool FlowWriteDrop(std::string_view host);
  // `label` names the spilling stream ("engine"/"native"), not a host:
  // spill I/O breaks per device store, not per destination.
  bool SpillIoFault(std::string_view label);

  // Zero, or the profile's spike when one fires for this exchange.
  util::Duration LatencySpike(std::string_view host);

  util::Duration server_timeout() const { return profile_.server_timeout; }

  // Observatory hook: every recorded fault additionally lands in the
  // journal as a "fault" event. Strictly additive — the events() log
  // and all decisions are identical with or without it. Pass nullptr
  // to detach.
  void SetJournal(obs::Journal* journal) { journal_ = journal; }

  // Every fault injected so far, in injection order.
  const std::vector<FaultEvent>& events() const { return events_; }
  uint64_t injected_total() const { return events_.size(); }
  uint64_t CountFor(FaultKind kind) const;

 private:
  struct Slot {
    uint64_t draws = 0;
    int episode_left = 0;
  };

  // Draws the next decision for (kind, host): true with probability `p`,
  // or unconditionally while an episode is running.
  bool Draw(FaultKind kind, std::string_view host, double p,
            int episode_length = 1);
  void Record(FaultKind kind, std::string_view host);

  uint64_t seed_;
  FaultProfile profile_;
  const util::SimClock* clock_;
  obs::Journal* journal_ = nullptr;
  std::map<std::string, Slot, std::less<>> slots_;
  std::vector<FaultEvent> events_;
  std::array<uint64_t, kFaultKindCount> counts_{};
};

}  // namespace panoptes::chaos
