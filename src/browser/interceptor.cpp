#include "browser/interceptor.h"

#include "browser/spec.h"

namespace panoptes::browser {

CdpInterceptor::CdpInterceptor(uint64_t session_seed) {
  util::Rng rng(session_seed);
  token_ = "cdp-" + rng.NextHex(12);
}

void CdpInterceptor::InterceptEngineRequest(net::HttpRequest& request) {
  ++intercepted_;
  request.headers.Set(kTaintHeader, token_);
}

FridaWebViewHook::FridaWebViewHook(uint64_t session_seed) {
  util::Rng rng(session_seed);
  token_ = "frida-" + rng.NextHex(12);
}

void FridaWebViewHook::InterceptEngineRequest(net::HttpRequest& request) {
  ++intercepted_;
  request.headers.Set(kTaintHeader, token_);
}

std::unique_ptr<RequestInterceptor> MakeInterceptor(int instrumentation_kind,
                                                    uint64_t session_seed) {
  if (instrumentation_kind ==
      static_cast<int>(Instrumentation::kFridaWebViewHook)) {
    return std::make_unique<FridaWebViewHook>(session_seed);
  }
  return std::make_unique<CdpInterceptor>(session_seed);
}

}  // namespace panoptes::browser
