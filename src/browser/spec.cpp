#include "browser/spec.h"

#include <algorithm>
#include <cmath>

namespace panoptes::browser {

double IdleCadence::ExpectedAt(util::Duration elapsed) const {
  double t_sec = elapsed.ToSecondsF();
  double t_min = t_sec / 60.0;
  switch (shape) {
    case IdleShape::kTwoPhase:
      return burst_total * (1.0 - std::exp(-t_sec / burst_tau_seconds)) +
             plateau_per_min * t_min;
    case IdleShape::kLinear:
      return linear_per_min * t_min;
    case IdleShape::kQuiet:
      // The few requests a quiet browser makes happen within the first
      // half-minute.
      return std::min(quiet_total,
                      quiet_total * (1.0 - std::exp(-t_sec / 15.0)));
  }
  return 0;
}

}  // namespace panoptes::browser
