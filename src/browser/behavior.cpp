#include "browser/behavior.h"

#include <cmath>

#include "util/strings.h"

namespace panoptes::browser {

namespace {

// Device-conditional cadence: on a metered connection Android apps
// defer and batch background telemetry (JobScheduler network
// constraints), so browsers phone home less often. The paper testbed
// is on unmetered WiFi — scale 1.0, bit-identical to the
// pre-population behaviour; metered cohorts damp expected call counts.
constexpr double kMeteredCadenceScale = 0.6;

double CadenceScale(const device::DeviceProfile& profile) {
  return profile.network_metering == "METERED" ? kMeteredCadenceScale : 1.0;
}

}  // namespace

void NativeBehavior::OnStartup() {
  FirePlanOnce(ctx_->spec().startup_calls);
}

void NativeBehavior::OnNavigate(const net::Url& url, bool incognito) {
  (void)url;
  (void)incognito;
  double scale = CadenceScale(ctx_->device().profile());
  for (const auto& call : ctx_->spec().per_visit_calls) {
    // Expected `per_visit` executions: fire the integer part, then a
    // Bernoulli trial for the fraction.
    double expected = call.per_visit * scale;
    int whole = static_cast<int>(std::floor(expected));
    for (int i = 0; i < whole; ++i) FireNativeCall(call);
    if (ctx_->rng().NextBool(expected - whole)) FireNativeCall(call);
  }
}

void NativeBehavior::OnPageLoaded(const net::Url& url, bool incognito) {
  (void)url;
  (void)incognito;
}

void NativeBehavior::OnIdleTick(util::Duration elapsed) {
  double target = ctx_->spec().idle_cadence.ExpectedAt(elapsed) *
                  CadenceScale(ctx_->device().profile());
  while (idle_fired_ + 1.0 <= target) {
    FireIdleRequest();
    idle_fired_ += 1.0;
  }
}

void NativeBehavior::FireNativeCall(const NativeCall& call) {
  net::HttpRequest request;
  request.method = call.post ? net::HttpMethod::kPost : net::HttpMethod::kGet;

  std::string path = util::ReplaceAll(call.path, "{token}",
                                      ctx_->rng().NextHex(12));
  request.url = net::Url::MustParse("https://" + call.host + path);

  if (call.carries_pii) ctx_->AttachPiiParams(request.url);

  if (call.post) {
    util::JsonObject body;
    body["ts"] = static_cast<int64_t>(ctx_->clock().Now().millis / 1000);
    body["app"] = ctx_->spec().package;
    body["v"] = ctx_->spec().version;
    if (call.carries_pii) ctx_->AttachPiiJson(body);
    std::string payload = util::Json(std::move(body)).Dump();
    // Pad batched-telemetry uploads to the planned size.
    if (payload.size() < call.body_bytes) {
      util::JsonObject padded_body;
      auto parsed = util::Json::Parse(payload);
      padded_body = parsed->as_object();
      padded_body["batch"] = std::string(call.body_bytes - payload.size(),
                                         'x');
      payload = util::Json(std::move(padded_body)).Dump();
    }
    request.body = std::move(payload);
    request.headers.Set("Content-Type", "application/json");
    request.headers.Set("Content-Length",
                        std::to_string(request.body.size()));
  }
  ctx_->SendNative(std::move(request));
}

void NativeBehavior::FirePlanOnce(const std::vector<NativeCall>& plan) {
  for (const auto& call : plan) FireNativeCall(call);
}

void NativeBehavior::FireIdleRequest() {
  const auto& destinations = ctx_->spec().idle_destinations;
  if (destinations.empty()) return;
  double total = 0;
  for (const auto& dest : destinations) total += dest.weight;
  double roll = ctx_->rng().NextDouble() * total;
  const IdleDestination* chosen = &destinations.back();
  for (const auto& dest : destinations) {
    roll -= dest.weight;
    if (roll <= 0) {
      chosen = &dest;
      break;
    }
  }
  NativeCall call;
  call.host = chosen->host;
  call.path = chosen->path;
  FireNativeCall(call);
}

}  // namespace panoptes::browser
