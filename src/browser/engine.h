// The web-engine simulator.
//
// Loads a page the way a browser engine does as far as the network is
// concerned: fetch the document, discover subresources in its HTML,
// fetch each (subject to the browser's in-engine ad blocker, if any),
// manage cookies, and report DOMContentLoaded. Every request goes out
// through BrowserContext::SendEngine, i.e. tainted.
#pragma once

#include <string>
#include <vector>

#include "browser/context.h"
#include "net/url.h"
#include "util/clock.h"
#include "web/easylist.h"

namespace panoptes::browser {

struct PageLoadResult {
  bool ok = false;                   // document fetched successfully
  bool dom_content_loaded = false;
  int requests_attempted = 0;        // document + subresources
  int requests_succeeded = 0;
  int blocked_by_adblock = 0;
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  util::Duration elapsed;
  std::vector<net::Url> fetched;     // successfully fetched URLs
  // Where the navigation committed: the requested URL, or — when the
  // server answered 3xx — the end of the followed redirect chain.
  net::Url final_url;
  int redirect_hops = 0;             // redirects followed (0 = none)
};

class WebEngine {
 public:
  // `filter` is consulted when the spec enables in-engine ad blocking.
  explicit WebEngine(BrowserContext* ctx);

  // Navigates to `url` (no address bar involved: the crawler drives
  // this through CDP Page.navigate / a Frida hook). `incognito`
  // disables cookie persistence. 3xx answers with a Location header
  // are followed for up to kMaxRedirectHops hops; each document hop
  // carries the navigation's chain token so the proxy links the hops
  // into one provenance chain. Subresources load from the final
  // (post-redirect) document.
  PageLoadResult LoadPage(const net::Url& url, bool incognito);

  // DOMContentLoaded deadline, after which the crawler gives up
  // (paper: 60 s).
  static constexpr util::Duration kLoadTimeout = util::Duration::Seconds(60);

  // Redirect-hop bound, matching Chromium's net::URLRequest limit: a
  // longer chain fails the navigation instead of looping forever.
  static constexpr int kMaxRedirectHops = 20;

 private:
  net::HttpRequest BuildRequest(const net::Url& url, const net::Url& referer,
                                bool incognito, bool is_document);
  void StoreCookies(const net::Url& url, const net::HttpResponse& response,
                    bool incognito);

  BrowserContext* ctx_;
  web::FilterList filter_;
  bool adblock_enabled_;
};

// Extracts absolute http(s) URLs referenced by src= / href= /
// data-fetch= attributes in an HTML document.
std::vector<net::Url> ExtractResourceUrls(std::string_view html);

}  // namespace panoptes::browser
