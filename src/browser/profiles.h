// The 15 browsers of Table 1, each with its behaviour model.
//
// Calibration note: the paper publishes *findings* (ratios, domain
// percentages, leak mechanisms, the Table 2 matrix) but not raw
// per-browser request plans. The plans below are free parameters tuned
// so the published numbers reproduce; every calibrated value is listed
// in EXPERIMENTS.md.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "browser/behavior.h"
#include "browser/spec.h"

namespace panoptes::browser {

// All 15 specs in the paper's Table 1 order.
const std::vector<BrowserSpec>& AllBrowserSpecs();

// Spec by display name ("Yandex", "UC International", ...).
const BrowserSpec* FindSpec(std::string_view name);

// Builds the behaviour implementing ctx->spec()'s findings.
std::unique_ptr<NativeBehavior> MakeBehavior(BrowserContext* ctx);

}  // namespace panoptes::browser
