// Static description of one mobile browser under test.
//
// A BrowserSpec is pure data: identity (Table 1), engine capabilities,
// instrumentation protocol (CDP vs Frida WebView hook), DNS choice,
// certificate pins, incognito availability, the PII fields its native
// telemetry carries (Table 2), how (and whether) it leaks the browsing
// history (§3.2), its per-visit native call plan (Figs 2-4) and its
// idle cadence (Fig 5). The behaviour classes in profiles.cpp turn
// this data into actual traffic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/clock.h"

namespace panoptes::browser {

// How Panoptes instruments the engine to taint its requests (§2.3).
enum class Instrumentation { kCdp, kFridaWebViewHook };

enum class DohProvider { kNone, kCloudflare, kGoogle };

// What the browser reports about each visited page, natively.
enum class HistoryLeak {
  kNone,
  kHostOnly,      // visited hostname/domain only (Edge→Bing, Opera→Sitecheck)
  kFullUrl,       // full URL incl. path & query (Yandex, QQ)
  kJsInjection,   // leak rides an injected script in engine traffic (UC)
};

// Table 2 row: which device/PII fields the browser's native requests
// carry.
struct PiiLeakProfile {
  bool device_type = false;
  bool manufacturer = false;
  bool timezone = false;
  bool resolution = false;
  bool local_ip = false;
  bool dpi = false;
  bool rooted = false;
  bool locale = false;
  bool country = false;
  bool location = false;  // latitude & longitude
  bool connection_type = false;
  bool network_type = false;

  bool AnyLeak() const {
    return device_type || manufacturer || timezone || resolution ||
           local_ip || dpi || rooted || locale || country || location ||
           connection_type || network_type;
  }
};

// One recurring native call in the per-visit plan.
struct NativeCall {
  std::string host;
  std::string path;             // may contain "{token}" placeholder
  bool post = false;
  double per_visit = 1.0;       // expected count per navigation
  size_t body_bytes = 0;        // POST payload size (0 = no body)
  bool carries_pii = false;     // attach the PiiLeakProfile fields
};

// Fig 5 idle-cadence shapes. Cumulative request count over idle time:
//   kTwoPhase: burst_total*(1-exp(-t/burst_tau)) + plateau_per_min*t
//   kLinear:   linear_per_min*t           (Opera's news feed)
//   kQuiet:    at most quiet_total requests, early on
enum class IdleShape { kTwoPhase, kLinear, kQuiet };

struct IdleCadence {
  IdleShape shape = IdleShape::kTwoPhase;
  double burst_total = 20;      // requests in the initial burst
  double burst_tau_seconds = 18;
  double plateau_per_min = 3;   // steady phone-home rate
  double linear_per_min = 10;
  double quiet_total = 2;

  // Expected cumulative native requests after `elapsed` idle time.
  double ExpectedAt(util::Duration elapsed) const;
};

// Destination mix for idle-time native requests (weights normalised).
struct IdleDestination {
  std::string host;
  std::string path;
  double weight = 1.0;
};

struct BrowserSpec {
  // Identity (Table 1).
  std::string name;     // "Yandex"
  std::string package;  // "com.yandex.browser"
  std::string version;  // "23.3.7.24"
  std::string engine = "Blink";
  std::string user_agent;

  // Capabilities & instrumentation.
  Instrumentation instrumentation = Instrumentation::kCdp;
  bool has_incognito = true;
  bool supports_h3 = true;
  DohProvider doh = DohProvider::kNone;
  bool engine_adblock = false;  // CocCoc: EasyList enforced in-engine

  // Hosts the app pins certificates for (lost to the MITM — footnote 3).
  std::vector<std::string> pinned_hosts;

  // Findings data.
  HistoryLeak history_leak = HistoryLeak::kNone;
  bool history_leak_in_incognito = false;  // keeps leaking in incognito
  bool persistent_identifier = false;      // Yandex's cross-reset UUID
  PiiLeakProfile pii;

  // Traffic plans.
  std::vector<NativeCall> per_visit_calls;
  IdleCadence idle_cadence;
  std::vector<IdleDestination> idle_destinations;

  // Startup (cold-start) native calls, fired once per launch.
  std::vector<NativeCall> startup_calls;

  // Address-bar autocomplete endpoint. Typing in the address bar sends
  // every keystroke prefix here — which is precisely why Panoptes
  // navigates via CDP/Frida instead of the address bar (§2.1): these
  // suggest queries would pollute the native traces.
  std::string suggest_host;
  std::string suggest_path = "/complete/search";
};

}  // namespace panoptes::browser
