#include "browser/profiles.h"

#include "util/base64.h"
#include "util/strings.h"

namespace panoptes::browser {

namespace {

// ---------------------------------------------------------------------------
// Spec construction helpers
// ---------------------------------------------------------------------------

NativeCall Call(std::string host, std::string path, double per_visit,
                bool post = false, size_t body_bytes = 0, bool pii = false) {
  NativeCall call;
  call.host = std::move(host);
  call.path = std::move(path);
  call.per_visit = per_visit;
  call.post = post;
  call.body_bytes = body_bytes;
  call.carries_pii = pii;
  return call;
}

IdleDestination Idle(std::string host, std::string path, double weight) {
  return IdleDestination{std::move(host), std::move(path), weight};
}

std::string ChromiumUa(std::string_view product) {
  std::string ua =
      "Mozilla/5.0 (Linux; Android 11; SM-T580) AppleWebKit/537.36 "
      "(KHTML, like Gecko) ";
  ua += product;
  ua += " Mobile Safari/537.36";
  return ua;
}

// ---------------------------------------------------------------------------
// Per-browser specs. Per-visit plans and idle cadences are the
// calibrated free parameters (see profiles.h and EXPERIMENTS.md); the
// leak mechanisms, PII matrix, DoH choices and incognito availability
// come straight from the paper.
// ---------------------------------------------------------------------------

BrowserSpec MakeChrome() {
  BrowserSpec s;
  s.suggest_host = "www.google.com";
  s.name = "Chrome";
  s.package = "com.android.chrome";
  s.version = "113.0.5672.77";
  s.user_agent = ChromiumUa("Chrome/113.0.5672.77");
  s.doh = DohProvider::kGoogle;
  s.pinned_hosts = {"clients4.google.com"};
  // Table 2: Chrome leaks none of the tracked fields.
  s.startup_calls = {
      Call("update.googleapis.com", "/service/update2?cup2key={token}", 1),
      Call("safebrowsing.googleapis.com", "/v4/threatListUpdates:fetch", 1,
           true, 256),
      Call("clients4.google.com", "/chrome-variations/seed", 1),
  };
  s.per_visit_calls = {
      Call("safebrowsing.googleapis.com", "/v4/fullHashes:find", 0.05, true,
           128),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 8, 20, 0.8, 0, 0};
  s.idle_destinations = {
      Idle("update.googleapis.com", "/service/update2", 0.4),
      Idle("safebrowsing.googleapis.com", "/v4/threatListUpdates:fetch",
           0.35),
      Idle("www.gstatic.com", "/chrome/config.json", 0.25),
  };
  return s;
}

BrowserSpec MakeEdge() {
  BrowserSpec s;
  s.suggest_host = "www.bing.com";
  s.name = "Edge";
  s.package = "com.microsoft.emmx";
  s.version = "113.0.1774.38";
  s.user_agent = ChromiumUa("Chrome/113.0.5672.77 EdgA/113.0.1774.38");
  s.doh = DohProvider::kCloudflare;
  s.history_leak = HistoryLeak::kHostOnly;  // every domain → Bing API
  s.history_leak_in_incognito = true;
  s.pii = {.manufacturer = true,
           .timezone = true,
           .resolution = true,
           .locale = true,
           .connection_type = true,
           .network_type = true};
  s.startup_calls = {
      Call("config.edge.skype.com", "/config/v1/Edge", 1),
      Call("edge.microsoft.com", "/componentupdater/api/v1/update", 1),
  };
  // Calibrated for a native/total request ratio ≈ 0.38 (Fig 2).
  s.per_visit_calls = {
      Call("vortex.data.microsoft.com", "/collect/v1", 3.8, true, 240, true),
      Call("config.edge.skype.com", "/config/v1/Edge", 1),
      Call("www.msn.com", "/feed/refresh?market={token}", 4.3),
      Call("assets.msn.com", "/service/news/card/{token}", 2.2),
      Call("app.adjust.com", "/session?app_token={token}", 0.4),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 45, 16, 7.5, 0, 0};
  s.idle_destinations = {
      Idle("www.msn.com", "/feed/refresh", 0.20),
      Idle("assets.msn.com", "/service/news/card/{token}", 0.15),
      Idle("www.bing.com", "/api/ping", 0.15),
      Idle("vortex.data.microsoft.com", "/collect/v1", 0.15),
      Idle("config.edge.skype.com", "/config/v1/Edge", 0.10),
      Idle("edge.microsoft.com", "/componentupdater/api/v1/update", 0.05),
      Idle("app.adjust.com", "/session", 0.08),
      Idle("widgets.outbrain.com", "/outbrain.js", 0.05),
      Idle("b1sync.zemanta.com", "/usersync", 0.04),
      Idle("sb.scorecardresearch.com", "/beacon", 0.03),
  };
  return s;
}

BrowserSpec MakeOpera() {
  BrowserSpec s;
  s.suggest_host = "sdx.opera.com";
  s.name = "Opera";
  s.package = "com.opera.browser";
  s.version = "75.1.3978.72329";
  s.user_agent = ChromiumUa("Chrome/113.0.5672.77 OPR/75.1.3978.72329");
  s.doh = DohProvider::kCloudflare;
  s.history_leak = HistoryLeak::kHostOnly;  // every domain → Sitecheck
  s.history_leak_in_incognito = true;
  s.pii = {.manufacturer = true,
           .timezone = true,
           .resolution = true,
           .locale = true,
           .country = true,
           .location = true,
           .network_type = true};
  s.startup_calls = {
      Call("autoupdate.geo.opera.com", "/v1/update", 1),
      Call("features.opera.com", "/v2/flags", 1),
      Call("crashstats.opera.com", "/ping", 1),
      Call("exchange.opera.com", "/session/start", 1),
      Call("sdx.opera.com", "/speeddial", 1),
      Call("notifications.opera.com", "/register", 1),
      Call("cdn.opera.com", "/startpage/assets", 1),
  };
  // Calibrated ratio ≈ 0.30; hosts chosen so ≈19% of the distinct
  // native hosts are ad/analytics (Fig 3: sitecheck estate + oleads +
  // appsflyer + doubleclick).
  s.per_visit_calls = {
      Call("news.opera-api.com", "/v1/news?edition={token}", 2.2),
      Call("static.opera.com", "/startpage/tile/{token}", 2.0),
      Call("thumbnails.opera.com", "/thumb/{token}", 1.2),
      Call("push.opera.com", "/v1/subscribe", 0.3),
      Call("inapps.appsflyersdk.com", "/api/v4/event", 0.4, true, 384),
      Call("ad.doubleclick.net", "/prefetch/{token}", 0.4),
  };
  s.idle_cadence = {IdleShape::kLinear, 0, 0, 0, 11, 0};  // news feed
  s.idle_destinations = {
      Idle("news.opera-api.com", "/v1/news", 0.40),
      Idle("ad.doubleclick.net", "/prefetch/{token}", 0.24),
      Idle("inapps.appsflyersdk.com", "/api/v4/event", 0.025),
      Idle("ofa.opera.com", "/config", 0.085),
      Idle("autoupdate.geo.opera.com", "/v1/update", 0.10),
      Idle("thumbnails.opera.com", "/thumb/{token}", 0.15),
  };
  return s;
}

BrowserSpec MakeVivaldi() {
  BrowserSpec s;
  s.suggest_host = "mimir2.vivaldi.com";
  s.name = "Vivaldi";
  s.package = "com.vivaldi.browser";
  s.version = "6.0.2980.33";
  s.user_agent = ChromiumUa("Chrome/113.0.5672.77 Vivaldi/6.0.2980.33");
  s.doh = DohProvider::kCloudflare;
  s.pii = {.resolution = true};
  s.startup_calls = {
      Call("update.vivaldi.com", "/update/check", 1),
      Call("mimir2.vivaldi.com", "/stats/launch", 1, true, 256, true),
  };
  // Calibrated ratio > 1/3 (Fig 2 names Vivaldi among the heavy five).
  s.per_visit_calls = {
      Call("update.vivaldi.com", "/update/check", 2.2),
      Call("sync.vivaldi.com", "/sync/command", 2.8, true, 280),
      Call("urlcheck.vivaldi.com", "/check?h={token}", 2.8),
      Call("downloads.vivaldi.com", "/themes/manifest", 1.7),
      Call("mimir2.vivaldi.com", "/stats/ping", 1, true, 192, true),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 28, 18, 3.5, 0, 0};
  s.idle_destinations = {
      Idle("sync.vivaldi.com", "/sync/command", 0.4),
      Idle("update.vivaldi.com", "/update/check", 0.3),
      Idle("downloads.vivaldi.com", "/themes/manifest", 0.3),
  };
  return s;
}

BrowserSpec MakeYandex() {
  BrowserSpec s;
  s.suggest_host = "api.browser.yandex.ru";
  s.name = "Yandex";
  s.package = "com.yandex.browser";
  s.version = "23.3.7.24";
  s.user_agent = ChromiumUa("Chrome/113.0.5672.77 YaBrowser/23.3.7.24");
  s.doh = DohProvider::kNone;       // local stub resolver
  s.has_incognito = false;          // footnote 5
  s.history_leak = HistoryLeak::kFullUrl;
  s.history_leak_in_incognito = true;  // no mode to escape into
  s.persistent_identifier = true;
  s.pii = {.device_type = true,
           .manufacturer = true,
           .resolution = true,
           .dpi = true,
           .locale = true,
           .network_type = true};
  s.startup_calls = {
      Call("browser-updates.yandex.net", "/check", 1),
      Call("api.browser.yandex.ru", "/startup", 1, false, 0, true),
  };
  // Calibrated ratio ≈ 0.39 — the highest in Fig 2. The sba/api
  // history reports are added by YandexBehavior on top of this plan.
  s.per_visit_calls = {
      Call("browser-updates.yandex.net", "/check", 2),
      Call("resize.yandex.net", "/thumb/{token}", 4),
      Call("favicon.yandex.net", "/favicon/{token}", 4.5),
      Call("mobile.yandexadexchange.net", "/v1/adprefetch", 1.5),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 40, 15, 5.5, 0, 0};
  s.idle_destinations = {
      Idle("favicon.yandex.net", "/favicon/{token}", 0.4),
      Idle("resize.yandex.net", "/thumb/{token}", 0.3),
      Idle("browser-updates.yandex.net", "/check", 0.2),
      Idle("mobile.yandexadexchange.net", "/v1/adprefetch", 0.1),
  };
  return s;
}

BrowserSpec MakeBrave() {
  BrowserSpec s;
  s.suggest_host = "static.brave.com";
  s.name = "Brave";
  s.package = "com.brave.browser";
  s.version = "1.51.114";
  s.user_agent = ChromiumUa("Chrome/113.0.5672.77 Brave/1.51.114");
  s.doh = DohProvider::kCloudflare;
  s.pinned_hosts = {"go-updater.brave.com"};
  s.startup_calls = {
      Call("variations.brave.com", "/seed", 1),
      Call("go-updater.brave.com", "/extensions", 1),  // pinned: lost
      Call("static.brave.com", "/ntp/sponsored.json", 1),
  };
  s.per_visit_calls = {};  // quietest of the Chromium forks
  s.idle_cadence = {IdleShape::kTwoPhase, 6, 25, 0.4, 0, 0};
  s.idle_destinations = {
      Idle("variations.brave.com", "/seed", 0.5),
      Idle("static.brave.com", "/ntp/sponsored.json", 0.5),
  };
  return s;
}

BrowserSpec MakeSamsung() {
  BrowserSpec s;
  s.suggest_host = "api.internet.apps.samsung.com";
  s.name = "Samsung";
  s.package = "com.sec.android.app.sbrowser";
  s.version = "20.0.6.5";
  s.user_agent = ChromiumUa("SamsungBrowser/20.0 Chrome/106.0.5249.126");
  s.doh = DohProvider::kGoogle;
  s.pii = {.locale = true};
  s.startup_calls = {
      Call("config.samsungbrowser.com", "/v3/config", 1, false, 0, true),
  };
  s.per_visit_calls = {
      Call("api.internet.apps.samsung.com", "/v1/stats", 0.8, true, 256,
           true),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 14, 20, 1.8, 0, 0};
  s.idle_destinations = {
      Idle("api.internet.apps.samsung.com", "/v1/stats", 0.5),
      Idle("config.samsungbrowser.com", "/v3/config", 0.5),
  };
  return s;
}

BrowserSpec MakeDuckDuckGo() {
  BrowserSpec s;
  s.suggest_host = "improving.duckduckgo.com";
  s.name = "DuckDuckGo";
  s.package = "com.duckduckgo.mobile.android";
  s.version = "5.158.0";
  s.engine = "WebView";
  s.user_agent = ChromiumUa("DuckDuckGo/5 Chrome/113.0.5672.77");
  s.doh = DohProvider::kNone;
  s.startup_calls = {
      Call("staticcdn.duckduckgo.com", "/trackerblocking/tds.json", 1),
  };
  s.per_visit_calls = {
      Call("improving.duckduckgo.com", "/t/page_load", 0.5),
  };
  s.idle_cadence = {IdleShape::kQuiet, 0, 0, 0, 0, 3};
  s.idle_destinations = {
      Idle("staticcdn.duckduckgo.com", "/trackerblocking/tds.json", 1.0),
  };
  return s;
}

BrowserSpec MakeDolphin() {
  BrowserSpec s;
  s.suggest_host = "api.dolphin-browser.com";
  s.name = "Dolphin";
  s.package = "mobi.mgeek.TunnyBrowser";
  s.version = "12.2.9";
  s.engine = "WebView";
  s.user_agent = ChromiumUa("Dolphin/12.2.9 Chrome/113.0.5672.77");
  s.doh = DohProvider::kNone;
  s.startup_calls = {
      Call("api.dolphin-browser.com", "/v2/launch", 1),
      Call("graph.facebook.com", "/v16.0/app/activities", 1, true, 320),
  };
  s.per_visit_calls = {
      Call("graph.facebook.com", "/v16.0/app/events", 1, true, 256),
      Call("api.dolphin-browser.com", "/v2/gesture/sync", 1.5),
      Call("cdn.dolphin-browser.com", "/speeddial/{token}", 0.5),
  };
  // §3.5: 46% of Dolphin's idle natives hit the Facebook Graph API.
  s.idle_cadence = {IdleShape::kTwoPhase, 20, 18, 2.2, 0, 0};
  s.idle_destinations = {
      Idle("graph.facebook.com", "/v16.0/app/events", 0.46),
      Idle("api.dolphin-browser.com", "/v2/launch", 0.34),
      Idle("cdn.dolphin-browser.com", "/speeddial/{token}", 0.20),
  };
  return s;
}

BrowserSpec MakeWhale() {
  BrowserSpec s;
  s.suggest_host = "api-whale.naver.com";
  s.name = "Whale";
  s.package = "com.naver.whale";
  s.version = "2.10.2.2";
  s.user_agent = ChromiumUa("Chrome/113.0.5672.77 Whale/2.10.2.2");
  s.doh = DohProvider::kNone;
  s.pinned_hosts = {"update.whale.naver.net"};
  s.pii = {.resolution = true,
           .local_ip = true,
           .rooted = true,
           .locale = true,
           .country = true,
           .network_type = true};
  s.startup_calls = {
      Call("api-whale.naver.com", "/v1/init", 1, true, 384, true),
  };
  // Calibrated ratio > 1/3 (Fig 2).
  s.per_visit_calls = {
      Call("api-whale.naver.com", "/v1/stats", 5.7, true, 160, true),
      Call("update.whale.naver.net", "/components", 2),  // pinned: lost
      Call("cast.whale.naver.com", "/v1/devices", 3.0),
      Call("store.whale.naver.com", "/extensions/updates", 3.2),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 30, 17, 3.8, 0, 0};
  s.idle_destinations = {
      Idle("api-whale.naver.com", "/v1/stats", 0.4),
      Idle("cast.whale.naver.com", "/v1/devices", 0.3),
      Idle("store.whale.naver.com", "/extensions/updates", 0.3),
  };
  return s;
}

BrowserSpec MakeMint() {
  BrowserSpec s;
  s.suggest_host = "api.browser.mi.com";
  s.name = "Mint";
  s.package = "com.mi.globalbrowser.mini";
  s.version = "3.9.3";
  s.engine = "WebView";
  s.user_agent = ChromiumUa("Mint/3.9.3 Chrome/113.0.5672.77");
  s.doh = DohProvider::kNone;
  s.pii = {.timezone = true,
           .resolution = true,
           .locale = true,
           .country = true};
  s.startup_calls = {
      Call("api.browser.mi.com", "/v5/config", 1, false, 0, true),
  };
  s.per_visit_calls = {
      Call("api.browser.mi.com", "/v5/recommend", 1.5),
      Call("data.mistat.xiaomi.com", "/mistats/v2", 1, true, 448, true),
      Call("graph.facebook.com", "/v16.0/app/events", 0.5, true, 256),
  };
  // §3.5: 8% of Mint's idle natives hit the Facebook Graph API.
  s.idle_cadence = {IdleShape::kTwoPhase, 22, 19, 2.5, 0, 0};
  s.idle_destinations = {
      Idle("graph.facebook.com", "/v16.0/app/events", 0.05),
      Idle("api.browser.mi.com", "/v5/recommend", 0.52),
      Idle("data.mistat.xiaomi.com", "/mistats/v2", 0.40),
  };
  return s;
}

BrowserSpec MakeKiwi() {
  BrowserSpec s;
  s.suggest_host = "kiwisearchservices.com";
  s.name = "Kiwi";
  s.package = "com.kiwibrowser.browser";
  s.version = "112.0.5615.137";
  s.user_agent = ChromiumUa("Chrome/112.0.5615.137 Kiwi/112");
  s.doh = DohProvider::kCloudflare;
  // Fig 3: ≈40% of the distinct hosts Kiwi contacts natively are
  // ad/analytics (rubicon, adnxs, openx, pubmatic, bidswitch, demdex).
  s.startup_calls = {
      Call("update.googleapis.com", "/service/update2", 1),
      Call("safebrowsing.googleapis.com", "/v4/threatListUpdates:fetch", 1,
           true, 256),
      Call("clients4.google.com", "/chrome-variations/seed", 1),
      Call("accounts.google.com", "/ListAccounts", 1),
      Call("www.gstatic.com", "/chrome/config.json", 1),
      Call("t0.gstatic.com", "/faviconV2?url={token}", 1),
      Call("kiwisearchservices.com", "/config", 1),
  };
  s.per_visit_calls = {
      Call("kiwisearchservices.com", "/suggest?q={token}", 0.8),
      Call("update.kiwibrowser.com", "/check", 0.5),
      Call("fastlane.rubiconproject.com", "/a/api/fastlane.json", 0.7),
      Call("ib.adnxs.com", "/ut/v3/prebid", 0.7, true, 256),
      Call("rtb.openx.net", "/w/1.0/arj", 0.6),
      Call("hbopenbid.pubmatic.com", "/translator", 0.6, true, 224),
      Call("x.bidswitch.net", "/sync", 0.4),
      Call("dpm.demdex.net", "/id", 0.4),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 16, 20, 1.8, 0, 0};
  s.idle_destinations = {
      Idle("kiwisearchservices.com", "/config", 0.4),
      Idle("update.kiwibrowser.com", "/check", 0.3),
      Idle("ib.adnxs.com", "/ut/v3/prebid", 0.15),
      Idle("fastlane.rubiconproject.com", "/a/api/fastlane.json", 0.15),
  };
  return s;
}

BrowserSpec MakeCocCoc() {
  BrowserSpec s;
  s.suggest_host = "browser.coccoc.com";
  s.name = "CocCoc";
  s.package = "com.coccoc.trinhduyet";
  s.version = "117.0.177";
  s.user_agent = ChromiumUa("Chrome/113.0.5672.77 coc_coc_browser/117.0.177");
  s.doh = DohProvider::kGoogle;
  s.engine_adblock = true;  // enforces EasyList in the web engine §3.1
  s.pii = {.device_type = true,
           .manufacturer = true,
           .resolution = true,
           .locale = true,
           .country = true};
  s.startup_calls = {
      Call("browser.coccoc.com", "/v1/boot", 1, false, 0, true),
      Call("app.adjust.com", "/attribution?app_token={token}", 1),
  };
  // Engine blocks ads, yet the app itself talks to adjust (§3.1) —
  // ratio still > 1/3 because the blocked engine traffic shrinks the
  // denominator.
  s.per_visit_calls = {
      Call("browser.coccoc.com", "/v1/newtab", 2.0),
      Call("log.coccoc.com", "/submit", 3.5, true, 256, true),
      Call("spell.itim.vn", "/v2/check?d={token}", 1.2),
      Call("app.adjust.com", "/event?app_token={token}", 1),
  };
  // §3.5: 6.7% of CocCoc's idle natives go to adjust.com.
  s.idle_cadence = {IdleShape::kTwoPhase, 24, 18, 2.6, 0, 0};
  s.idle_destinations = {
      Idle("app.adjust.com", "/event", 0.061),
      Idle("browser.coccoc.com", "/v1/newtab", 0.533),
      Idle("log.coccoc.com", "/submit", 0.40),
  };
  return s;
}

BrowserSpec MakeQq() {
  BrowserSpec s;
  s.suggest_host = "wup.browser.qq.com";
  s.name = "QQ";
  s.package = "com.tencent.mtt";
  s.version = "13.7.6.6042";
  s.user_agent = ChromiumUa("MQQBrowser/13.7 Chrome/113.0.5672.77");
  s.doh = DohProvider::kNone;
  s.has_incognito = false;  // footnote 5
  s.history_leak = HistoryLeak::kFullUrl;
  s.history_leak_in_incognito = true;
  s.pii = {.device_type = true, .manufacturer = true, .resolution = true};
  s.startup_calls = {
      Call("wup.browser.qq.com", "/v1/boot", 1, true, 512, true),
  };
  // Calibrated for Fig 4: native *outgoing* bytes ≈ 42% of the engine's
  // outgoing bytes — large batched telemetry uploads, not just many
  // requests. The full-URL phone home is added by QqBehavior.
  s.per_visit_calls = {
      Call("mtt.browser.qq.com", "/metrics/batch", 2, true, 800, true),
      Call("log.tbs.qq.com", "/ajax?c=dl&k={token}", 2, true, 420),
      Call("aax.amazon-adsystem.com", "/e/dtb/bid", 0.6, true, 320, true),
      Call("wup.browser.qq.com", "/v1/config", 2),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 32, 16, 4.2, 0, 0};
  s.idle_destinations = {
      Idle("mtt.browser.qq.com", "/metrics/batch", 0.4),
      Idle("wup.browser.qq.com", "/v1/config", 0.4),
      Idle("log.tbs.qq.com", "/ajax", 0.2),
  };
  return s;
}

BrowserSpec MakeUc() {
  BrowserSpec s;
  s.suggest_host = "api.ucweb.com";
  s.name = "UC International";
  s.package = "com.UCMobile.intl";
  s.version = "13.4.2.1307";
  s.engine = "U4/WebView";
  s.user_agent = ChromiumUa("UCBrowser/13.4.2.1307 Chrome/100.0.4896.58");
  // UC has no CDP endpoint: Panoptes hooks its WebView via Frida (§2.1).
  s.instrumentation = Instrumentation::kFridaWebViewHook;
  s.doh = DohProvider::kNone;
  s.history_leak = HistoryLeak::kJsInjection;  // §3.2: injected snippet
  s.history_leak_in_incognito = true;
  s.pii = {.locale = true, .network_type = true};
  s.startup_calls = {
      Call("puds.ucweb.com", "/upgrade/check", 1),
      Call("api.ucweb.com", "/v1/config", 1, false, 0, true),
  };
  s.per_visit_calls = {
      Call("api.ucweb.com", "/v1/stat", 2, true, 320, true),
      Call("puds.ucweb.com", "/upgrade/components", 1.5),
      Call("u.ucweb.com", "/sync/bookmarks", 2),
  };
  s.idle_cadence = {IdleShape::kTwoPhase, 18, 19, 2.0, 0, 0};
  s.idle_destinations = {
      Idle("api.ucweb.com", "/v1/stat", 0.5),
      Idle("u.ucweb.com", "/sync/bookmarks", 0.3),
      Idle("puds.ucweb.com", "/upgrade/check", 0.2),
  };
  return s;
}

// ---------------------------------------------------------------------------
// Behaviour subclasses implementing the paper's individual findings.
// ---------------------------------------------------------------------------

// Yandex (§3.2, "The Yandex case"): every page visit produces
//   GET sba.yandex.net/safebrowsing/report?url=<Base64(full URL)>
//   GET api.browser.yandex.ru/track?uuid=<persistent id>&host=<host>
// on every visit (not just the first), incognito or not (no incognito
// mode exists), with an identifier that survives cookie clearing and
// IP changes.
class YandexBehavior : public NativeBehavior {
 public:
  using NativeBehavior::NativeBehavior;

  void OnNavigate(const net::Url& url, bool incognito) override {
    NativeBehavior::OnNavigate(url, incognito);

    net::HttpRequest sba;
    sba.url = net::Url::MustParse("https://sba.yandex.net/safebrowsing/report");
    sba.url.AddQueryParam("url", util::Base64Encode(url.Serialize()));
    ctx_->SendNative(std::move(sba));

    net::HttpRequest track;
    track.url = net::Url::MustParse("https://api.browser.yandex.ru/track");
    track.url.AddQueryParam("uuid", ctx_->EnsureStoredId("yandex_uuid"));
    track.url.AddQueryParam("host", url.host());
    ctx_->AttachPiiParams(track.url);
    ctx_->SendNative(std::move(track));
  }
};

// QQ (§3.2): sends the entire visited URL, path and query included, in
// its phone-home POST body.
class QqBehavior : public NativeBehavior {
 public:
  using NativeBehavior::NativeBehavior;

  void OnNavigate(const net::Url& url, bool incognito) override {
    NativeBehavior::OnNavigate(url, incognito);

    net::HttpRequest report;
    report.method = net::HttpMethod::kPost;
    report.url = net::Url::MustParse("https://wup.browser.qq.com/phone_home");
    util::JsonObject body;
    body["qimei"] = ctx_->EnsureStoredId("qq_qimei", 32);
    body["url"] = url.Serialize();
    body["ts"] = static_cast<int64_t>(ctx_->clock().Now().millis / 1000);
    report.body = util::Json(std::move(body)).Dump();
    report.headers.Set("Content-Type", "application/json");
    report.headers.Set("Content-Length",
                       std::to_string(report.body.size()));
    ctx_->SendNative(std::move(report));
  }
};

// UC International (§3.2): no native history report — instead an
// obfuscated JS snippet injected into *every page* beacons the full
// URL plus city-level geolocation and ISP. Because the snippet runs in
// the page, its request carries the engine taint and shows up in the
// engine store; the analysis finds it by destination + payload.
class UcBehavior : public NativeBehavior {
 public:
  using NativeBehavior::NativeBehavior;

  void OnPageLoaded(const net::Url& url, bool incognito) override {
    (void)incognito;  // the snippet is injected in incognito too
    net::HttpRequest beacon;
    beacon.url = net::Url::MustParse("https://u.ucweb.com/collect");
    beacon.url.AddQueryParam("pv", url.Serialize());
    beacon.url.AddQueryParam("city", ctx_->device().profile().city);
    beacon.url.AddQueryParam("isp", ctx_->device().profile().isp);
    ctx_->SendEngine(std::move(beacon));
  }
};

// Edge (§3.2): reports every visited domain to the Bing API.
class EdgeBehavior : public NativeBehavior {
 public:
  using NativeBehavior::NativeBehavior;

  void OnNavigate(const net::Url& url, bool incognito) override {
    NativeBehavior::OnNavigate(url, incognito);
    net::HttpRequest report;
    report.url = net::Url::MustParse("https://www.bing.com/api/v1/visited");
    report.url.AddQueryParam("domain", url.host());
    ctx_->SendNative(std::move(report));
  }
};

// Opera (§3.2 + Listing 1): reports every visited domain to Sitecheck
// (its anti-phishing service) and fires the oleads ad-SDK fetch whose
// JSON body carries the operaId, precise coordinates and device data.
class OperaBehavior : public NativeBehavior {
 public:
  using NativeBehavior::NativeBehavior;

  void OnNavigate(const net::Url& url, bool incognito) override {
    NativeBehavior::OnNavigate(url, incognito);

    net::HttpRequest sitecheck;
    sitecheck.url =
        net::Url::MustParse("https://sitecheck2.opera.com/api/check");
    sitecheck.url.AddQueryParam("host", url.host());
    ctx_->SendNative(std::move(sitecheck));

    ctx_->SendNative(BuildOleadsFetch());
  }

  void OnIdleTick(util::Duration elapsed) override {
    NativeBehavior::OnIdleTick(elapsed);
    // One ad fetch per idle minute rides along with the news feed.
    int64_t minutes = elapsed.millis / 60000;
    while (oleads_idle_fired_ < minutes) {
      ctx_->SendNative(BuildOleadsFetch());
      ++oleads_idle_fired_;
    }
  }

 private:
  net::HttpRequest BuildOleadsFetch() {
    const auto& profile = ctx_->device().profile();
    util::JsonObject body;
    body["channelId"] = "adxsdk_for_opera_ofa_final";
    body["availableServices"] = util::JsonArray{util::Json("GOOGLE_PLAY")};
    body["appPackageName"] = ctx_->spec().package;
    body["appVersion"] = ctx_->spec().version;
    body["sdkVersion"] = "1.12.2";
    body["osType"] = profile.os;
    body["osVersion"] = profile.os_version;
    body["deviceModel"] = profile.model;
    body["operaId"] = ctx_->EnsureStoredId("opera_id", 64);
    body["userConsent"] = "false";
    body["positionTimestamp"] =
        static_cast<int64_t>(ctx_->clock().Now().millis / 1000);
    body["timestamp"] =
        static_cast<int64_t>(ctx_->clock().Now().millis / 1000);
    body["placementKey"] = "556949864898556";
    body["adCount"] = 2;
    body["floorPriceInCent"] = 0;
    body["token"] = ctx_->rng().NextHex(28);
    body["supportedAdTypes"] = util::JsonArray{util::Json("SINGLE")};
    body["supportedCreativeTypes"] = util::JsonArray{
        util::Json("BIG_CARD"), util::Json("DISPLAY_HTML_300x250"),
        util::Json("NATIVE_NEWSFLOW_1_IMAGE"), util::Json("POLL")};
    ctx_->AttachPiiJson(body);  // vendor, country, language, lat/lon, ...

    net::HttpRequest fetch;
    fetch.method = net::HttpMethod::kPost;
    // Regional ad-SDK front-end: devices west of UTC resolve the
    // Americas endpoint (the SDK picks its CDN by device region). The
    // paper's Greek vantage (UTC+3) keeps the default host, so
    // default-cohort runs are byte-identical to the single-endpoint
    // behaviour.
    const bool western = profile.timezone_offset_minutes < 0;
    fetch.url = net::Url::MustParse(
        western ? "https://s-odx-amer.oleads.com/api/v1/sdk_fetch"
                : "https://s-odx.oleads.com/api/v1/sdk_fetch");
    fetch.body = util::Json(std::move(body)).Dump();
    fetch.headers.Set("Content-Type", "application/json");
    fetch.headers.Set("Content-Length", std::to_string(fetch.body.size()));
    return fetch;
  }

  int64_t oleads_idle_fired_ = 0;
};

}  // namespace

const std::vector<BrowserSpec>& AllBrowserSpecs() {
  static const std::vector<BrowserSpec> kSpecs = {
      MakeChrome(),     MakeEdge(),   MakeOpera(),  MakeVivaldi(),
      MakeYandex(),     MakeBrave(),  MakeSamsung(), MakeQq(),
      MakeDuckDuckGo(), MakeDolphin(), MakeWhale(),  MakeMint(),
      MakeKiwi(),       MakeCocCoc(), MakeUc(),
  };
  return kSpecs;
}

const BrowserSpec* FindSpec(std::string_view name) {
  for (const auto& spec : AllBrowserSpecs()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::unique_ptr<NativeBehavior> MakeBehavior(BrowserContext* ctx) {
  const std::string& name = ctx->spec().name;
  if (name == "Yandex") return std::make_unique<YandexBehavior>(ctx);
  if (name == "QQ") return std::make_unique<QqBehavior>(ctx);
  if (name == "UC International") return std::make_unique<UcBehavior>(ctx);
  if (name == "Edge") return std::make_unique<EdgeBehavior>(ctx);
  if (name == "Opera") return std::make_unique<OperaBehavior>(ctx);
  return std::make_unique<DataDrivenBehavior>(ctx);
}

}  // namespace panoptes::browser
