#include "browser/runtime.h"

#include "browser/profiles.h"

namespace panoptes::browser {

BrowserRuntime::BrowserRuntime(BrowserSpec spec,
                               device::AndroidDevice* device,
                               device::NetworkStack* netstack,
                               net::Network* network, util::SimClock* clock,
                               uint64_t seed)
    : spec_(std::move(spec)), device_(device) {
  // Install on first use only: launching an already-installed browser
  // must not wipe its private storage (that is exactly what lets
  // persistent identifiers survive across sessions).
  if (device_->FindApp(spec_.package) == nullptr) {
    device_->InstallApp(spec_.package);
  }
  auto* app = device_->FindApp(spec_.package);

  // Vendor apps ship their pins; after any reset they hold again.
  for (const auto& host : spec_.pinned_hosts) {
    if (const auto* leaf = network->LeafFor(host)) {
      app->pins.Pin(host, leaf->spki_id);
    }
  }

  ctx_ = std::make_unique<BrowserContext>(&spec_, device, app, netstack,
                                          network, clock, seed);
  engine_ = std::make_unique<WebEngine>(ctx_.get());
  behavior_ = MakeBehavior(ctx_.get());
}

void BrowserRuntime::Startup() { behavior_->OnStartup(); }

NavigateOutcome BrowserRuntime::Navigate(const net::Url& url,
                                         bool incognito) {
  NavigateOutcome outcome;
  bool effective_incognito = incognito;
  if (incognito && !spec_.has_incognito) {
    outcome.incognito_honored = false;
    effective_incognito = false;
  }
  behavior_->OnNavigate(url, effective_incognito);
  outcome.page = engine_->LoadPage(url, effective_incognito);
  // When the server redirected, the navigation committed somewhere
  // else: the native layer observes the committed URL too (real
  // browsers report history/sync/safe-browsing on the final URL), so
  // behaviors fire again with it — which is exactly how a decorated
  // post-bounce URL reaches native telemetry endpoints.
  if (outcome.page.redirect_hops > 0 && outcome.page.ok &&
      outcome.page.final_url != url) {
    behavior_->OnNavigate(outcome.page.final_url, effective_incognito);
  }
  if (outcome.page.dom_content_loaded) {
    // dom_content_loaded implies the document committed, so final_url
    // is where the page actually loaded.
    behavior_->OnPageLoaded(outcome.page.final_url, effective_incognito);
  }
  return outcome;
}

void BrowserRuntime::IdleTick(util::Duration elapsed) {
  behavior_->OnIdleTick(elapsed);
}

int BrowserRuntime::TypeInAddressBar(std::string_view text) {
  if (spec_.suggest_host.empty()) return 0;
  int fired = 0;
  for (size_t len = 3; len <= text.size(); ++len) {
    net::HttpRequest query;
    query.url = net::Url::MustParse("https://" + spec_.suggest_host +
                                    spec_.suggest_path);
    query.url.AddQueryParam("q", text.substr(0, len));
    query.url.AddQueryParam("client", spec_.package);
    ctx_->SendNative(std::move(query));
    ++fired;
  }
  return fired;
}

}  // namespace panoptes::browser
