// A running browser instance: spec + context + engine + native
// behaviour, installed as an app on the device.
#pragma once

#include <memory>
#include <string>

#include "browser/behavior.h"
#include "browser/context.h"
#include "browser/engine.h"
#include "browser/spec.h"
#include "device/netstack.h"
#include "net/fabric.h"

namespace panoptes::browser {

struct NavigateOutcome {
  // False when incognito was requested but the browser has no such
  // mode (Yandex, QQ) — the visit proceeds in normal mode, which is
  // itself one of the paper's findings (§3.2, footnote 5).
  bool incognito_honored = true;
  PageLoadResult page;
};

class BrowserRuntime {
 public:
  // Installs the app (keeping its UID if present), re-establishes the
  // vendor's certificate pins against the genuine leaves, and builds
  // the engine/behaviour pair.
  BrowserRuntime(BrowserSpec spec, device::AndroidDevice* device,
                 device::NetworkStack* netstack, net::Network* network,
                 util::SimClock* clock, uint64_t seed);

  const BrowserSpec& spec() const { return spec_; }
  BrowserContext& context() { return *ctx_; }
  NativeBehavior& behavior() { return *behavior_; }

  // Cold start: fires the startup native plan.
  void Startup();

  // One crawl visit, driven via CDP Page.navigate or the Frida hook
  // (never the address bar, so autocomplete cannot pollute traces).
  NavigateOutcome Navigate(const net::Url& url, bool incognito = false);

  // Idle campaign hook; `elapsed` = time since idling began.
  void IdleTick(util::Duration elapsed);

  // Simulates a user typing `text` into the address bar: one native
  // autocomplete query per keystroke once three characters are in.
  // Crawl campaigns NEVER call this — the whole point of driving
  // navigation through CDP/Frida is to keep these out of the traces
  // (§2.1). Returns the number of suggest queries fired.
  int TypeInAddressBar(std::string_view text);

 private:
  BrowserSpec spec_;
  device::AndroidDevice* device_;
  std::unique_ptr<BrowserContext> ctx_;
  std::unique_ptr<WebEngine> engine_;
  std::unique_ptr<NativeBehavior> behavior_;
};

}  // namespace panoptes::browser
