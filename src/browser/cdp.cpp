#include "browser/cdp.h"

namespace panoptes::browser {

CdpSession::CdpSession(BrowserRuntime* runtime) : runtime_(runtime) {}

void CdpSession::LogEvent(const std::string& method,
                          util::JsonObject params) {
  CdpFrame frame;
  frame.kind = CdpFrame::Kind::kEvent;
  frame.method = method;
  frame.payload = util::Json(std::move(params)).Dump();
  frames_.push_back(std::move(frame));
}

util::JsonObject CdpSession::SendCommand(const std::string& method,
                                         util::JsonObject params) {
  int id = next_id_++;
  {
    CdpFrame frame;
    frame.kind = CdpFrame::Kind::kCommand;
    frame.id = id;
    frame.method = method;
    frame.payload = util::Json(params).Dump();
    frames_.push_back(std::move(frame));
  }

  util::JsonObject result;
  if (method == "Browser.getVersion") {
    result["product"] =
        runtime_->spec().name + "/" + runtime_->spec().version;
    result["userAgent"] = runtime_->spec().user_agent;
  } else if (method == "Page.enable") {
    page_enabled_ = true;
  } else if (method == "Network.enable") {
    // Modeled as always-on observation; nothing to flip.
  } else if (method == "Fetch.enable") {
    fetch_enabled_ = true;
  } else if (method == "Page.navigate") {
    const auto it = params.find("url");
    if (it == params.end() || !it->second.is_string()) {
      result["error"] = "Page.navigate requires params.url";
    } else {
      auto url = net::Url::Parse(it->second.as_string());
      if (!url) {
        result["error"] = "invalid url";
      } else {
        bool incognito = false;
        if (auto inc = params.find("_incognito"); inc != params.end()) {
          incognito = inc->second.is_bool() && inc->second.as_bool();
        }
        last_outcome_ = runtime_->Navigate(*url, incognito);
        result["frameId"] = "frame-" + std::to_string(id);
        if (last_outcome_.page.dom_content_loaded) {
          util::JsonObject event;
          event["timestamp"] =
              last_outcome_.page.elapsed.ToSecondsF();
          LogEvent("Page.domContentEventFired", std::move(event));
        }
      }
    }
  } else {
    result["error"] = "'" + method + "' wasn't found";
  }

  {
    CdpFrame frame;
    frame.kind = CdpFrame::Kind::kResult;
    frame.id = id;
    frame.method = method;
    frame.payload = util::Json(result).Dump();
    frames_.push_back(std::move(frame));
  }
  return result;
}

void CdpSession::Attach() {
  SendCommand("Page.enable");
  SendCommand("Network.enable");
  SendCommand("Fetch.enable");
}

NavigateOutcome CdpSession::Navigate(const net::Url& url, bool incognito) {
  util::JsonObject params;
  params["url"] = url.Serialize();
  params["_incognito"] = incognito;
  SendCommand("Page.navigate", std::move(params));
  return last_outcome_;
}

FridaDriver::FridaDriver(BrowserRuntime* runtime) : runtime_(runtime) {}

void FridaDriver::Attach() {
  // The real framework injects a script hooking
  // WebViewClient#shouldInterceptRequest; here the interceptor is
  // already part of the runtime, so attaching records the act.
  script_loaded_ = true;
  console_.push_back("[frida] hooked android.webkit.WebViewClient#"
                     "shouldInterceptRequest in " +
                     runtime_->spec().package);
}

NavigateOutcome FridaDriver::Navigate(const net::Url& url, bool incognito) {
  console_.push_back("[frida] WebView.loadUrl(\"" + url.Serialize() + "\")");
  auto outcome = runtime_->Navigate(url, incognito);
  if (outcome.page.dom_content_loaded) {
    console_.push_back("[frida] onPageFinished " + url.Serialize());
  }
  return outcome;
}

std::unique_ptr<NavigationDriver> MakeDriver(BrowserRuntime* runtime) {
  if (runtime->spec().instrumentation ==
      Instrumentation::kFridaWebViewHook) {
    return std::make_unique<FridaDriver>(runtime);
  }
  return std::make_unique<CdpSession>(runtime);
}

}  // namespace panoptes::browser
