#include "browser/engine.h"

#include "util/strings.h"

namespace panoptes::browser {

namespace {

constexpr std::string_view kAttrs[] = {"src=\"", "href=\"", "data-fetch=\""};

}  // namespace

std::vector<net::Url> ExtractResourceUrls(std::string_view html) {
  std::vector<net::Url> out;
  for (auto attr : kAttrs) {
    size_t pos = 0;
    while ((pos = html.find(attr, pos)) != std::string_view::npos) {
      pos += attr.size();
      size_t end = html.find('"', pos);
      if (end == std::string_view::npos) break;
      std::string_view value = html.substr(pos, end - pos);
      pos = end + 1;
      if (!util::StartsWith(value, "http")) continue;
      if (auto url = net::Url::Parse(value)) out.push_back(std::move(*url));
    }
  }
  return out;
}

WebEngine::WebEngine(BrowserContext* ctx)
    : ctx_(ctx),
      adblock_enabled_(ctx->spec().engine_adblock) {
  if (adblock_enabled_) filter_ = web::FilterList::DefaultEasyList();
}

net::HttpRequest WebEngine::BuildRequest(const net::Url& url,
                                         const net::Url& referer,
                                         bool incognito, bool is_document) {
  net::HttpRequest request;
  request.method = net::HttpMethod::kGet;
  request.url = url;
  // Real engines ship a rich header set on every subresource fetch
  // (content negotiation, client hints, fetch metadata); native app
  // pings are much terser. This asymmetry is why Fig 4's byte overhead
  // ranks browsers differently from Fig 2's request-count ratio.
  request.headers.Set("Accept",
                      is_document
                          ? "text/html,application/xhtml+xml,application/"
                            "xml;q=0.9,image/avif,image/webp,*/*;q=0.8"
                          : "*/*");
  request.headers.Set("Accept-Language", "el-GR,el;q=0.9,en-US;q=0.8");
  request.headers.Set("Accept-Encoding", "gzip, deflate, br");
  request.headers.Set("sec-ch-ua-platform", "\"Android\"");
  request.headers.Set("sec-ch-ua-mobile", "?1");
  request.headers.Set("Sec-Fetch-Site", is_document ? "none" : "cross-site");
  request.headers.Set("Sec-Fetch-Mode", is_document ? "navigate" : "no-cors");
  request.headers.Set("Sec-Fetch-Dest", is_document ? "document" : "empty");
  if (is_document) {
    request.headers.Set("Upgrade-Insecure-Requests", "1");
  }
  if (!referer.host().empty()) {
    request.headers.Set("Referer", referer.Origin() + "/");
  }
  if (!incognito) {
    std::string cookie_header =
        ctx_->app().cookies.CookieHeaderFor(url, ctx_->clock().Now());
    if (!cookie_header.empty()) {
      request.headers.Set("Cookie", cookie_header);
    }
  }
  return request;
}

void WebEngine::StoreCookies(const net::Url& url,
                             const net::HttpResponse& response,
                             bool incognito) {
  if (incognito) return;
  if (auto set_cookie = response.headers.Get("Set-Cookie")) {
    ctx_->app().cookies.SetFromHeader(*set_cookie, url,
                                      ctx_->clock().Now());
  }
}

namespace {

bool IsRedirectStatus(int status) {
  return status == 301 || status == 302 || status == 303 || status == 307 ||
         status == 308;
}

}  // namespace

PageLoadResult WebEngine::LoadPage(const net::Url& url, bool incognito) {
  PageLoadResult result;
  util::SimTime start = ctx_->clock().Now();

  // Document fetch, following server redirects up to kMaxRedirectHops.
  // Every hop of one navigation carries the same freshly minted chain
  // token (plus its hop index), so the proxy's flow records link into
  // one provenance chain. Server redirects of an address-bar
  // navigation carry no Referer; cookies set by a redirecting response
  // (the first-party bounce pattern) are stored before following it.
  const uint64_t chain = ctx_->NextChainToken();
  net::Url doc_url = url;
  int hop = 0;
  device::SendOutcome doc;
  for (;;) {
    net::HttpRequest doc_request =
        BuildRequest(doc_url, net::Url(), incognito, /*is_document=*/true);
    ++result.requests_attempted;
    doc = ctx_->SendEngine(doc_request, chain, static_cast<uint32_t>(hop));
    result.bytes_sent += doc.request_bytes;
    if (!doc.ok) break;
    auto location = doc.response.headers.Get("Location");
    if (!IsRedirectStatus(doc.response.status) || !location) break;
    if (hop >= kMaxRedirectHops ||
        ctx_->clock().Now() - start >= kLoadTimeout) {
      break;
    }
    auto next = net::Url::Parse(*location);
    if (!next.has_value()) break;  // unresolvable hop: navigation fails
    ++result.requests_succeeded;
    result.bytes_received += doc.response_bytes;
    StoreCookies(doc_url, doc.response, incognito);
    doc_url = std::move(*next);
    ++hop;
  }
  result.redirect_hops = hop;
  result.final_url = doc_url;
  if (!doc.ok || doc.response.status != 200) {
    result.elapsed = ctx_->clock().Now() - start;
    return result;
  }
  ++result.requests_succeeded;
  result.ok = true;
  result.bytes_received += doc.response_bytes;
  result.fetched.push_back(doc_url);
  StoreCookies(doc_url, doc.response, incognito);

  // Subresources belong to the committed (post-redirect) document:
  // first-party checks, Referer and cookie scoping all key on where
  // the navigation landed, not where it started.
  for (const auto& resource_url : ExtractResourceUrls(doc.response.body)) {
    if (ctx_->clock().Now() - start >= kLoadTimeout) break;
    if (adblock_enabled_ &&
        filter_.ShouldBlock(resource_url, doc_url.host())) {
      ++result.blocked_by_adblock;
      continue;
    }
    net::HttpRequest request =
        BuildRequest(resource_url, doc_url, incognito, /*is_document=*/false);
    ++result.requests_attempted;
    auto outcome = ctx_->SendEngine(request);
    result.bytes_sent += outcome.request_bytes;
    if (outcome.ok && outcome.response.status < 400) {
      ++result.requests_succeeded;
      result.bytes_received += outcome.response_bytes;
      result.fetched.push_back(resource_url);
      StoreCookies(resource_url, outcome.response, incognito);
    }
  }

  result.elapsed = ctx_->clock().Now() - start;
  result.dom_content_loaded = result.elapsed < kLoadTimeout;
  return result;
}

}  // namespace panoptes::browser
