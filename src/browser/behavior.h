// Native behaviour: the traffic a browser app generates *itself*, as
// designed by its vendor — phone-home requests, telemetry, ad SDK
// calls, feed refreshes. This is the traffic Panoptes isolates by the
// absence of the engine taint.
//
// DataDrivenBehavior executes the spec's declarative plans (startup
// calls, per-visit calls, idle cadence); browser-specific subclasses in
// profiles.cpp layer the paper's individual findings on top (Yandex's
// Base64 URL reports, QQ's full-URL phone home, UC's JS injection,
// Edge's Bing reports, Opera's Sitecheck + oleads ad request, ...).
#pragma once

#include <memory>
#include <string>

#include "browser/context.h"
#include "browser/engine.h"
#include "browser/spec.h"

namespace panoptes::browser {

class NativeBehavior {
 public:
  explicit NativeBehavior(BrowserContext* ctx) : ctx_(ctx) {}
  virtual ~NativeBehavior() = default;

  // Cold start: fired once when the browser launches.
  virtual void OnStartup();

  // Fired for every committed navigation, before the page settles.
  virtual void OnNavigate(const net::Url& url, bool incognito);

  // Fired after DOMContentLoaded (UC's injected snippet runs here, in
  // *engine* context).
  virtual void OnPageLoaded(const net::Url& url, bool incognito);

  // Fired by the idle campaign; `elapsed` is time since the browser
  // was left idle at its start page.
  virtual void OnIdleTick(util::Duration elapsed);

 protected:
  // Executes one planned call (resolves "{token}" placeholders, builds
  // PII payloads, fires `per_visit` times in expectation).
  void FireNativeCall(const NativeCall& call);
  void FirePlanOnce(const std::vector<NativeCall>& plan);

  // Issues one idle-time request to a weighted destination.
  void FireIdleRequest();

  BrowserContext* ctx_;
  double idle_fired_ = 0;
};

// Behaviour entirely described by the spec's plans.
class DataDrivenBehavior : public NativeBehavior {
 public:
  using NativeBehavior::NativeBehavior;
};

}  // namespace panoptes::browser
