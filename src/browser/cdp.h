// Chrome DevTools Protocol session modeling (paper §2.1).
//
// Panoptes drives navigation through CDP's Page domain and taints
// engine requests through the Fetch domain, never through the address
// bar (autocomplete would pollute the traces). This module models the
// JSON-RPC message exchange so campaigns navigate the way the real
// framework does, and the message log is inspectable in tests.
//
// For browsers without a CDP endpoint (UC International) the
// FridaDriver stands in: it "loads" a hook script and navigates by
// invoking the WebView's loadUrl through the instrumented process.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "browser/runtime.h"
#include "util/json.h"

namespace panoptes::browser {

// Uniform navigation interface for the crawler.
class NavigationDriver {
 public:
  virtual ~NavigationDriver() = default;

  // Prepares instrumentation (Fetch.enable / script injection).
  virtual void Attach() = 0;

  // Navigates without touching the address bar.
  virtual NavigateOutcome Navigate(const net::Url& url, bool incognito) = 0;

  virtual std::string_view Describe() const = 0;
};

// One JSON-RPC exchange (command or event), as logged by the session.
struct CdpFrame {
  enum class Kind { kCommand, kResult, kEvent };
  Kind kind = Kind::kCommand;
  int id = 0;                // commands/results; 0 for events
  std::string method;        // "Page.navigate", "Page.domContentEventFired"
  std::string payload;       // serialized params/result JSON
};

class CdpSession : public NavigationDriver {
 public:
  explicit CdpSession(BrowserRuntime* runtime);

  // Generic command entry point; understood methods:
  //   Browser.getVersion, Page.enable, Network.enable, Fetch.enable,
  //   Page.navigate {url}. Unknown methods return {"error": ...}.
  util::JsonObject SendCommand(const std::string& method,
                               util::JsonObject params = {});

  // NavigationDriver:
  void Attach() override;
  NavigateOutcome Navigate(const net::Url& url, bool incognito) override;
  std::string_view Describe() const override { return "cdp"; }

  bool fetch_interception_enabled() const { return fetch_enabled_; }
  const std::vector<CdpFrame>& frames() const { return frames_; }

 private:
  void LogEvent(const std::string& method, util::JsonObject params);

  BrowserRuntime* runtime_;
  std::vector<CdpFrame> frames_;
  int next_id_ = 1;
  bool page_enabled_ = false;
  bool fetch_enabled_ = false;
  NavigateOutcome last_outcome_;
};

class FridaDriver : public NavigationDriver {
 public:
  explicit FridaDriver(BrowserRuntime* runtime);

  // NavigationDriver:
  void Attach() override;  // "loads" the WebView hook script
  NavigateOutcome Navigate(const net::Url& url, bool incognito) override;
  std::string_view Describe() const override { return "frida"; }

  bool script_loaded() const { return script_loaded_; }
  const std::vector<std::string>& console_log() const { return console_; }

 private:
  BrowserRuntime* runtime_;
  bool script_loaded_ = false;
  std::vector<std::string> console_;
};

// CDP when the spec supports it, Frida otherwise — exactly the paper's
// split (UC International is the Frida case).
std::unique_ptr<NavigationDriver> MakeDriver(BrowserRuntime* runtime);

}  // namespace panoptes::browser
