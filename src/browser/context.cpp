#include "browser/context.h"

#include "util/strings.h"
#include "util/uuid.h"

namespace panoptes::browser {

namespace {

std::string DohProviderHost(DohProvider provider) {
  switch (provider) {
    case DohProvider::kCloudflare: return "cloudflare-dns.com";
    case DohProvider::kGoogle: return "dns.google";
    case DohProvider::kNone: return {};
  }
  return {};
}

}  // namespace

BrowserContext::BrowserContext(const BrowserSpec* spec,
                               device::AndroidDevice* device,
                               device::InstalledApp* app,
                               device::NetworkStack* netstack,
                               net::Network* network, util::SimClock* clock,
                               uint64_t seed)
    : spec_(spec),
      device_(device),
      app_(app),
      netstack_(netstack),
      network_(network),
      clock_(clock),
      rng_(seed) {
  interceptor_ = MakeInterceptor(static_cast<int>(spec->instrumentation),
                                 rng_.NextU64());
  stub_resolver_ = std::make_unique<net::StubResolver>(&network->zone());
  resolver_ = stub_resolver_.get();

  if (spec->doh != DohProvider::kNone) {
    std::string provider = DohProviderHost(spec->doh);
    // The DoH query itself is a native HTTPS request by the browser
    // app; its own hostname bootstraps through the stub resolver.
    auto transport = [this](std::string_view query_url)
        -> std::optional<std::string> {
      net::HttpRequest request;
      request.method = net::HttpMethod::kGet;
      request.url = net::Url::MustParse(query_url);
      request.headers.Set("Accept", "application/dns-json");
      request.headers.Set("User-Agent", spec_->user_agent);
      device::SendContext send_ctx;
      send_ctx.app = app_;
      send_ctx.resolver = stub_resolver_.get();
      send_ctx.wants_h3 = spec_->supports_h3;
      ++counters_.native_requests;
      auto outcome = netstack_->Send(request, send_ctx);
      if (!outcome.ok) {
        ++counters_.native_failures;
        return std::nullopt;
      }
      return outcome.response.body;
    };
    doh_resolver_ =
        std::make_unique<net::DohResolver>(provider, std::move(transport));
    resolver_ = doh_resolver_.get();
  }
}

device::SendOutcome BrowserContext::SendEngine(net::HttpRequest request,
                                               uint64_t chain_id,
                                               uint32_t redirect_hop) {
  request.headers.Set("User-Agent", spec_->user_agent);
  interceptor_->InterceptEngineRequest(request);
  device::SendContext send_ctx;
  send_ctx.app = app_;
  send_ctx.resolver = resolver_;
  send_ctx.wants_h3 = spec_->supports_h3;
  send_ctx.chain_id = chain_id;
  send_ctx.redirect_hop = redirect_hop;
  ++counters_.engine_requests;
  auto outcome = netstack_->Send(request, send_ctx);
  if (!outcome.ok) ++counters_.engine_failures;
  return outcome;
}

device::SendOutcome BrowserContext::SendNative(net::HttpRequest request) {
  request.headers.Set("User-Agent", spec_->user_agent);
  device::SendContext send_ctx;
  send_ctx.app = app_;
  send_ctx.resolver = resolver_;
  send_ctx.wants_h3 = spec_->supports_h3;
  ++counters_.native_requests;
  auto outcome = netstack_->Send(request, send_ctx);
  if (!outcome.ok) ++counters_.native_failures;
  return outcome;
}

std::string BrowserContext::EnsureStoredId(std::string_view key,
                                           size_t hex_length) {
  if (auto existing = app_->storage.Get(key)) return *existing;
  std::string value = hex_length == 0 ? util::GenerateUuid(rng_)
                                      : rng_.NextHex(hex_length);
  app_->storage.Put(key, value);
  return value;
}

void BrowserContext::AttachPiiParams(net::Url& url) const {
  const auto& pii = spec_->pii;
  const auto& profile = device_->profile();
  if (pii.device_type) url.AddQueryParam("devtype", profile.device_type);
  if (pii.manufacturer) url.AddQueryParam("manuf", profile.manufacturer);
  if (pii.timezone) url.AddQueryParam("tz", profile.timezone);
  if (pii.resolution) {
    url.AddQueryParam("res", std::to_string(profile.screen_width) + "x" +
                                 std::to_string(profile.screen_height));
  }
  if (pii.local_ip) url.AddQueryParam("lip", profile.local_ip.ToString());
  if (pii.dpi) url.AddQueryParam("dpi", std::to_string(profile.dpi));
  if (pii.rooted) {
    url.AddQueryParam("rooted", profile.rooted ? "true" : "false");
  }
  if (pii.locale) url.AddQueryParam("locale", profile.locale);
  if (pii.country) url.AddQueryParam("country", profile.country);
  if (pii.location) {
    url.AddQueryParam("lat", util::FormatDouble(profile.latitude, 4));
    url.AddQueryParam("lon", util::FormatDouble(profile.longitude, 4));
  }
  if (pii.connection_type) {
    url.AddQueryParam("conn", profile.network_metering);
  }
  if (pii.network_type) url.AddQueryParam("net", profile.connection_type);
}

void BrowserContext::AttachPiiJson(util::JsonObject& object) const {
  const auto& pii = spec_->pii;
  const auto& profile = device_->profile();
  if (pii.device_type) object["deviceType"] = profile.device_type;
  if (pii.manufacturer) object["deviceVendor"] = profile.manufacturer;
  if (pii.timezone) object["timezone"] = profile.timezone;
  if (pii.resolution) {
    object["deviceScreenWidth"] = profile.screen_width;
    object["deviceScreenHeight"] = profile.screen_height;
  }
  if (pii.local_ip) object["localIp"] = profile.local_ip.ToString();
  if (pii.dpi) object["dpi"] = profile.dpi;
  if (pii.rooted) object["rooted"] = profile.rooted;
  if (pii.locale) object["languageCode"] = profile.locale;
  if (pii.country) object["countryCode"] = profile.country;
  if (pii.location) {
    object["latitude"] = profile.latitude;
    object["longitude"] = profile.longitude;
  }
  if (pii.connection_type) object["metering"] = profile.network_metering;
  if (pii.network_type) object["connectionType"] = profile.connection_type;
}

}  // namespace panoptes::browser
