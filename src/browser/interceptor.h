// Engine-request tainting (§2.3).
//
// Panoptes intercepts every HTTP request the web engine initiates and
// piggybacks a custom "x-" header before it leaves the device; the
// MITM addon later separates tainted (engine) from untainted (native)
// flows and strips the header. Two mechanisms exist, exactly as in the
// paper: the Chrome DevTools Protocol Fetch domain, and a Frida script
// hooking the WebView's request factory for browsers without CDP (UC).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "net/http.h"
#include "util/rng.h"

namespace panoptes::browser {

// The taint header name ("x-" prefix so it cannot collide with real
// headers, per the paper).
inline constexpr std::string_view kTaintHeader = "x-panoptes-taint";

class RequestInterceptor {
 public:
  virtual ~RequestInterceptor() = default;

  // Marks one engine request. Implementations add the taint header.
  virtual void InterceptEngineRequest(net::HttpRequest& request) = 0;

  // "cdp" or "frida-webview".
  virtual std::string_view Describe() const = 0;

  uint64_t intercepted_count() const { return intercepted_; }

 protected:
  uint64_t intercepted_ = 0;
};

// CDP Fetch-domain interception.
class CdpInterceptor : public RequestInterceptor {
 public:
  explicit CdpInterceptor(uint64_t session_seed);

  void InterceptEngineRequest(net::HttpRequest& request) override;
  std::string_view Describe() const override { return "cdp"; }

  const std::string& session_token() const { return token_; }

 private:
  std::string token_;
};

// Frida hook on android.webkit.WebViewClient#shouldInterceptRequest.
class FridaWebViewHook : public RequestInterceptor {
 public:
  explicit FridaWebViewHook(uint64_t session_seed);

  void InterceptEngineRequest(net::HttpRequest& request) override;
  std::string_view Describe() const override { return "frida-webview"; }

 private:
  std::string token_;
};

// Factory matching the spec's Instrumentation value.
std::unique_ptr<RequestInterceptor> MakeInterceptor(
    int instrumentation_kind, uint64_t session_seed);

}  // namespace panoptes::browser
