#include "device/app.h"

namespace panoptes::device {

void AppStorage::Put(std::string_view key, std::string_view value) {
  values_[std::string(key)] = std::string(value);
}

std::optional<std::string> AppStorage::Get(std::string_view key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool AppStorage::Has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

void AppStorage::Erase(std::string_view key) {
  auto it = values_.find(key);
  if (it != values_.end()) values_.erase(it);
}

void AppStorage::Clear() { values_.clear(); }

}  // namespace panoptes::device
