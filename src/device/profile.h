// Static description of the test device.
//
// The paper's testbed is a Samsung Galaxy Tab A (SM-T580) on Android 11
// crawling from an EU vantage point. Every field here is something at
// least one browser in the dataset leaks natively (Table 2), so the PII
// scanner searches captured traffic for exactly these values.
#pragma once

#include <string>

#include "net/ip.h"

namespace panoptes::device {

struct DeviceProfile {
  std::string manufacturer = "Samsung";
  std::string model = "SM-T580";
  std::string device_type = "TABLET";
  std::string os = "ANDROID";
  std::string os_version = "11";
  int screen_width = 1200;
  int screen_height = 1920;
  int dpi = 240;
  std::string timezone = "Europe/Athens";
  int timezone_offset_minutes = 180;  // UTC+3 (EEST)
  std::string locale = "el-GR";
  std::string country = "GR";
  std::string city = "Heraklion";
  double latitude = 35.3387;
  double longitude = 25.1442;
  bool rooted = false;
  std::string connection_type = "WIFI";      // WIFI / CELLULAR
  std::string network_metering = "UNMETERED";
  std::string isp = "HellasNet Broadband";
  net::IpAddress local_ip{192, 168, 1, 42};
  net::IpAddress public_ip{94, 66, 220, 17};  // EU (Greece) block

  // The factory profile used across the whole evaluation.
  static DeviceProfile PaperTestbed() { return DeviceProfile{}; }
};

}  // namespace panoptes::device
