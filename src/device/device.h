// The Android device: installed apps, system trust store, iptables and
// the device profile. The network stack (netstack.h) performs the
// actual sending on its behalf.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "device/app.h"
#include "device/iptables.h"
#include "device/profile.h"
#include "net/tls.h"

namespace panoptes::device {

class AndroidDevice {
 public:
  explicit AndroidDevice(DeviceProfile profile = DeviceProfile::PaperTestbed());

  const DeviceProfile& profile() const { return profile_; }
  DeviceProfile& mutable_profile() { return profile_; }

  net::CaStore& trust_store() { return trust_store_; }
  const net::CaStore& trust_store() const { return trust_store_; }

  Iptables& iptables() { return iptables_; }
  const Iptables& iptables() const { return iptables_; }

  // Installs an app, assigning the next kernel UID (Android app UIDs
  // start at 10000). Returns the assigned UID. Reinstalling an existing
  // package keeps its UID but wipes its storage.
  int InstallApp(std::string_view package);

  InstalledApp* FindApp(std::string_view package);
  const InstalledApp* FindApp(std::string_view package) const;

  // Appium-style reset to factory settings: wipes storage, cookies and
  // pins for the package. Returns false if not installed.
  bool FactoryResetApp(std::string_view package);

  // "Clear browsing data": cookies only; app-private storage survives.
  bool ClearCookies(std::string_view package);

  size_t app_count() const { return apps_.size(); }

  // Changes the public IP (models switching to Tor / a VPN / a new
  // network) without touching any app state.
  void SetPublicIp(net::IpAddress ip) { profile_.public_ip = ip; }

 private:
  DeviceProfile profile_;
  net::CaStore trust_store_;
  Iptables iptables_;
  std::map<std::string, InstalledApp, std::less<>> apps_;
  int next_uid_ = 10050;
};

}  // namespace panoptes::device
