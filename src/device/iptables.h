// Minimal iptables-like rule engine.
//
// Panoptes creates two kinds of rules on the device (paper §2.2):
//   1. divert all TCP traffic of a browser's kernel UID through the
//      transparent MITM proxy, and
//   2. block all HTTP/3 (UDP/443) traffic, because mitmproxy could not
//      intercept QUIC — browsers then fall back to older HTTP versions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace panoptes::device {

enum class Protocol { kTcp, kUdp };

enum class RuleAction { kAccept, kDivert, kReject };

struct IptablesRule {
  // Match criteria; nullopt = wildcard.
  std::optional<int> uid;
  std::optional<Protocol> protocol;
  std::optional<uint16_t> dest_port;
  RuleAction action = RuleAction::kAccept;
  std::string comment;
};

class Iptables {
 public:
  // Appends a rule; evaluation is first-match-wins, default kAccept.
  void Append(IptablesRule rule);

  // Removes every rule whose comment equals `comment`; returns count.
  size_t DeleteByComment(std::string_view comment);

  void Flush();

  RuleAction Evaluate(int uid, Protocol protocol, uint16_t dest_port) const;

  const std::vector<IptablesRule>& rules() const { return rules_; }

  // Convenience builders matching what Panoptes installs.
  static IptablesRule DivertUidTcp(int uid);
  static IptablesRule BlockQuic();

 private:
  std::vector<IptablesRule> rules_;
};

}  // namespace panoptes::device
