// The device-side network send path.
//
// Every HTTP(S) exchange an app performs goes through here:
//
//   resolve (stub or DoH) → pick protocol (h3 attempt unless UDP/443 is
//   blocked by iptables) → TCP path: consult iptables for the app UID —
//   diverted flows handshake with the MITM proxy (forged certificate,
//   verified against the device trust store and the app's pin set),
//   accepted flows handshake with the genuine server → exchange.
//
// Certificate pinning failures abort the exchange before any
// application data is sent, which is exactly why the paper's results
// are a lower bound (footnote 3): pinned flows simply vanish from the
// proxy's view.
#pragma once

#include <cstdint>
#include <string_view>

#include <memory>

#include "device/device.h"
#include "device/traffic_stats.h"
#include "net/dns.h"
#include "net/latency.h"
#include "net/fabric.h"
#include "util/clock.h"

namespace panoptes::chaos {
class Injector;
}  // namespace panoptes::chaos

namespace panoptes::device {

enum class SendError {
  kNone,
  kDnsFailure,
  kTlsUntrusted,
  kTlsHostMismatch,
  kTlsPinMismatch,
  kTlsHandshakeDrop,  // handshake dropped mid-flight (chaos injection)
  kTimeout,           // server never answered inside the budget
  kNoRoute,
  kRejected,  // iptables REJECT matched the TCP flow
};

std::string_view SendErrorName(SendError error);

struct SendOutcome {
  bool ok = false;
  SendError error = SendError::kNone;
  net::HttpResponse response;
  net::HttpVersion version_used = net::HttpVersion::kHttp11;
  bool via_proxy = false;
  bool quic_fallback = false;  // h3 was attempted and blocked
  size_t request_bytes = 0;
  size_t response_bytes = 0;
};

// Implemented by the transparent MITM proxy (proxy::MitmProxy).
class TrafficDiverter {
 public:
  virtual ~TrafficDiverter() = default;

  // The leaf certificate the diverter presents when a client opens a
  // TLS connection with this SNI.
  virtual const net::Certificate& PresentCertificate(
      std::string_view sni) = 0;

  // Processes a request after the client accepted the forged
  // certificate: runs addons, forwards to the genuine server, returns
  // its (addon-processed) response.
  virtual net::HttpResponse Forward(net::HttpRequest request,
                                    net::ConnectionMeta meta) = 0;
};

struct SendContext {
  const InstalledApp* app = nullptr;  // UID + pins; required
  net::Resolver* resolver = nullptr;  // required
  bool wants_h3 = false;              // app supports HTTP/3
  // Navigation-chain provenance for engine document requests, copied
  // into the ConnectionMeta so the MITM proxy can record redirect
  // chains without the request carrying extra bytes. Zero = untracked.
  uint64_t chain_id = 0;
  uint32_t redirect_hop = 0;
};

struct NetworkStackStats {
  uint64_t sends = 0;
  uint64_t ok = 0;
  uint64_t dns_failures = 0;
  uint64_t tls_failures = 0;
  uint64_t pin_failures = 0;
  uint64_t timeouts = 0;       // server timeouts (chaos injection)
  uint64_t quic_blocked = 0;   // h3 attempts forced back to TCP
  uint64_t quic_direct = 0;    // h3 exchanges that bypassed the proxy
  uint64_t diverted = 0;
};

class NetworkStack {
 public:
  NetworkStack(AndroidDevice* device, net::Network* network,
               util::SimClock* clock);

  // Installs (or clears, with nullptr) the MITM diverter.
  void SetDiverter(TrafficDiverter* diverter) { diverter_ = diverter; }

  // Simulated round-trip latency added to the clock per exchange.
  void SetLatency(util::Duration latency) { latency_ = latency; }

  // Installs a per-destination latency model (e.g. GeoLatencyModel);
  // overrides the fixed latency. Pass nullptr to revert.
  void SetLatencyModel(std::unique_ptr<net::LatencyModel> model) {
    latency_model_ = std::move(model);
  }

  // Layers the chaos injector into the send path: TLS handshake drops
  // before any application data and server timeouts that burn the
  // profile's timeout budget on the simulated clock. Pass nullptr to
  // detach.
  void SetChaos(chaos::Injector* injector) { chaos_ = injector; }

  SendOutcome Send(const net::HttpRequest& request, const SendContext& ctx);

  const NetworkStackStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStackStats{}; }

  // android.net.TrafficStats-style per-UID byte ledger. Survives
  // ResetStats (cleared explicitly, like rebooting the device).
  const TrafficStatsRegistry& traffic_stats() const { return traffic_; }
  void ResetTrafficStats() { traffic_.Reset(); }

 private:
  SendOutcome DirectExchange(const net::HttpRequest& request,
                             const SendContext& ctx, net::IpAddress ip,
                             net::HttpVersion version);

  AndroidDevice* device_;
  net::Network* network_;
  util::SimClock* clock_;
  TrafficDiverter* diverter_ = nullptr;
  chaos::Injector* chaos_ = nullptr;
  util::Duration latency_ = util::Duration::Millis(25);
  std::unique_ptr<net::LatencyModel> latency_model_;
  NetworkStackStats stats_;
  TrafficStatsRegistry traffic_;
};

}  // namespace panoptes::device
