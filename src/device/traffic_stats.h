// Per-UID traffic accounting, mirroring android.net.TrafficStats.
//
// Android exposes cumulative tx/rx byte counters per kernel UID; tools
// like PCAPdroid build on them. Panoptes keeps the same ledger on the
// device side, which gives the test suite a powerful cross-check: for
// fully intercepted traffic, the device's ledger and the proxy's flow
// databases must agree byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace panoptes::device {

struct UidTraffic {
  uint64_t tx_bytes = 0;    // bytes the app sent (requests)
  uint64_t rx_bytes = 0;    // bytes the app received (responses)
  uint64_t tx_packets = 0;  // exchanges initiated
  uint64_t failed_attempts = 0;  // sends that never completed
};

class TrafficStatsRegistry {
 public:
  void RecordExchange(int uid, uint64_t tx_bytes, uint64_t rx_bytes);
  void RecordFailure(int uid);

  // Counters for one UID (zeros when the UID never sent).
  UidTraffic ForUid(int uid) const;

  // Aggregate over all UIDs.
  UidTraffic Total() const;

  void Reset() { by_uid_.clear(); }
  size_t TrackedUids() const { return by_uid_.size(); }

 private:
  std::map<int, UidTraffic> by_uid_;
};

}  // namespace panoptes::device
