#include "device/device.h"

namespace panoptes::device {

AndroidDevice::AndroidDevice(DeviceProfile profile)
    : profile_(std::move(profile)) {}

int AndroidDevice::InstallApp(std::string_view package) {
  auto it = apps_.find(package);
  if (it != apps_.end()) {
    it->second.storage.Clear();
    it->second.cookies.Clear();
    it->second.pins = net::PinSet();
    return it->second.uid;
  }
  InstalledApp app;
  app.package = std::string(package);
  app.uid = next_uid_++;
  int uid = app.uid;
  apps_.emplace(std::string(package), std::move(app));
  return uid;
}

InstalledApp* AndroidDevice::FindApp(std::string_view package) {
  auto it = apps_.find(package);
  return it == apps_.end() ? nullptr : &it->second;
}

const InstalledApp* AndroidDevice::FindApp(std::string_view package) const {
  auto it = apps_.find(package);
  return it == apps_.end() ? nullptr : &it->second;
}

bool AndroidDevice::FactoryResetApp(std::string_view package) {
  auto* app = FindApp(package);
  if (app == nullptr) return false;
  app->storage.Clear();
  app->cookies.Clear();
  app->pins = net::PinSet();
  return true;
}

bool AndroidDevice::ClearCookies(std::string_view package) {
  auto* app = FindApp(package);
  if (app == nullptr) return false;
  app->cookies.Clear();
  return true;
}

}  // namespace panoptes::device
