// Installed applications: package name, kernel UID, private storage and
// certificate pins.
//
// Per-app kernel UIDs are what Panoptes keys its iptables diversion on
// (paper §2.2); app-private storage is where persistent tracking
// identifiers live (it survives cookie clearing, which is how Yandex's
// identifier defeats Tor/VPN/IP rotation).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "net/cookies.h"
#include "net/tls.h"

namespace panoptes::device {

// Key-value store standing in for an app's private data directory.
class AppStorage {
 public:
  void Put(std::string_view key, std::string_view value);
  std::optional<std::string> Get(std::string_view key) const;
  bool Has(std::string_view key) const;
  void Erase(std::string_view key);
  void Clear();
  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

struct InstalledApp {
  std::string package;  // e.g. "com.opera.browser"
  int uid = -1;         // kernel UID (unique per app)
  AppStorage storage;     // survives cookie clearing; wiped on app reset
  net::CookieJar cookies; // wiped by "clear browsing data" AND app reset
  net::PinSet pins;     // certificate pins the app enforces
};

}  // namespace panoptes::device
