#include "device/population.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "util/rng.h"

namespace panoptes::device {
namespace {

// A hardware family: manufacturer plus weighted model/screen variants.
struct ModelEntry {
  const char* model;
  const char* device_type;  // PHONE / TABLET
  int screen_width;
  int screen_height;
  int dpi;
  const char* os_version;
  double weight;  // share within the manufacturer
};

struct ManufacturerEntry {
  const char* name;
  double weight;  // global market share (normalized at draw time)
  std::array<ModelEntry, 3> models;
};

// Rough 2023 Android market shape: Samsung leads, Xiaomi/Oppo mid-tier
// volume, Google/OnePlus long tail. Screen/DPI pairs are real device
// panels so resolution-needle PII scans exercise distinct "WxH" values.
constexpr std::array<ManufacturerEntry, 6> kManufacturers = {{
    {"Samsung",
     0.34,
     {{{"SM-T580", "TABLET", 1200, 1920, 240, "11", 0.2},
       {"SM-G991B", "PHONE", 1080, 2400, 421, "13", 0.5},
       {"SM-A525F", "PHONE", 1080, 2400, 405, "12", 0.3}}}},
    {"Xiaomi",
     0.22,
     {{{"M2101K6G", "PHONE", 1080, 2400, 395, "12", 0.45},
       {"2201123G", "PHONE", 1080, 2400, 402, "13", 0.35},
       {"21051182G", "TABLET", 1600, 2560, 274, "12", 0.2}}}},
    {"OPPO",
     0.14,
     {{{"CPH2219", "PHONE", 720, 1600, 270, "11", 0.5},
       {"CPH2339", "PHONE", 1080, 2400, 408, "12", 0.3},
       {"CPH2473", "PHONE", 1080, 2412, 394, "13", 0.2}}}},
    {"Huawei",
     0.12,
     {{{"ELS-NX9", "PHONE", 1200, 2640, 441, "10", 0.4},
       {"JAD-LX9", "PHONE", 1224, 2700, 456, "12", 0.35},
       {"AGS3K-W09", "TABLET", 1200, 2000, 225, "11", 0.25}}}},
    {"Google",
     0.1,
     {{{"Pixel 6", "PHONE", 1080, 2400, 411, "13", 0.45},
       {"Pixel 7a", "PHONE", 1080, 2400, 429, "13", 0.35},
       {"Pixel 4a", "PHONE", 1080, 2340, 443, "12", 0.2}}}},
    {"OnePlus",
     0.08,
     {{{"LE2113", "PHONE", 1080, 2400, 402, "12", 0.5},
       {"NE2213", "PHONE", 1440, 3216, 525, "13", 0.3},
       {"CPH2409", "PHONE", 1080, 2412, 394, "13", 0.2}}}},
}};

// A measurement vantage: locale, timezone and geo coordinates, ISP and
// a public-IP block. Half the table sits in the western and/or
// southern hemisphere so populations always carry negative latitudes,
// longitudes and UTC offsets — the regression surface for the
// FormatDouble / PII round-trip audits.
struct VantageEntry {
  const char* locale;
  const char* country;
  const char* city;
  const char* timezone;
  int timezone_offset_minutes;
  double latitude;
  double longitude;
  const char* isp;
  uint8_t ip_a;  // first two public-IP octets of the ISP block
  uint8_t ip_b;
  double weight;
};

constexpr std::array<VantageEntry, 8> kVantages = {{
    {"el-GR", "GR", "Heraklion", "Europe/Athens", 180, 35.3387, 25.1442,
     "HellasNet Broadband", 94, 66, 0.14},
    {"de-DE", "DE", "Berlin", "Europe/Berlin", 120, 52.52, 13.405,
     "Telekom DE", 91, 64, 0.16},
    {"en-US", "US", "New York", "America/New_York", -240, 40.7128, -74.006,
     "Verizon Wireless", 72, 229, 0.18},
    {"pt-BR", "BR", "Sao Paulo", "America/Sao_Paulo", -180, -23.5505,
     -46.6333, "Vivo Movel", 177, 32, 0.14},
    {"en-AU", "AU", "Sydney", "Australia/Sydney", 600, -33.8688, 151.2093,
     "Telstra Mobile", 58, 96, 0.1},
    {"es-MX", "MX", "Mexico City", "America/Mexico_City", -360, 19.4326,
     -99.1332, "Telcel", 187, 190, 0.1},
    {"ja-JP", "JP", "Tokyo", "Asia/Tokyo", 540, 35.6762, 139.6503,
     "NTT Docomo", 110, 163, 0.1},
    {"en-IN", "IN", "Mumbai", "Asia/Kolkata", 330, 19.076, 72.8777,
     "Jio Mobile", 49, 36, 0.08},
}};

void Fold(uint64_t& state, uint64_t value) {
  state ^= value;
  util::SplitMix64(state);
}

void Fold(uint64_t& state, std::string_view value) {
  Fold(state, util::HashString(value));
}

template <typename Table>
size_t PickWeighted(util::Rng& rng, const Table& table) {
  double total = 0.0;
  for (const auto& entry : table) total += entry.weight;
  double roll = rng.NextDouble() * total;
  for (size_t i = 0; i < table.size(); ++i) {
    roll -= table[i].weight;
    if (roll < 0.0) return i;
  }
  return table.size() - 1;
}

}  // namespace

uint64_t DeviceProfileFingerprint(const DeviceProfile& profile) {
  uint64_t state = util::HashString("panoptes-device-profile");
  Fold(state, profile.manufacturer);
  Fold(state, profile.model);
  Fold(state, profile.device_type);
  Fold(state, profile.os);
  Fold(state, profile.os_version);
  Fold(state, static_cast<uint64_t>(profile.screen_width));
  Fold(state, static_cast<uint64_t>(profile.screen_height));
  Fold(state, static_cast<uint64_t>(profile.dpi));
  Fold(state, profile.timezone);
  Fold(state, static_cast<uint64_t>(
                  static_cast<int64_t>(profile.timezone_offset_minutes)));
  Fold(state, profile.locale);
  Fold(state, profile.country);
  Fold(state, profile.city);
  uint64_t lat_bits;
  uint64_t lon_bits;
  static_assert(sizeof(lat_bits) == sizeof(profile.latitude));
  std::memcpy(&lat_bits, &profile.latitude, sizeof(lat_bits));
  std::memcpy(&lon_bits, &profile.longitude, sizeof(lon_bits));
  Fold(state, lat_bits);
  Fold(state, lon_bits);
  Fold(state, static_cast<uint64_t>(profile.rooted ? 1 : 0));
  Fold(state, profile.connection_type);
  Fold(state, profile.network_metering);
  Fold(state, profile.isp);
  Fold(state, static_cast<uint64_t>(profile.local_ip.value()));
  Fold(state, static_cast<uint64_t>(profile.public_ip.value()));
  return state;
}

uint64_t PaperTestbedFingerprint() {
  static const uint64_t kFingerprint =
      DeviceProfileFingerprint(DeviceProfile::PaperTestbed());
  return kFingerprint;
}

uint64_t DeriveCohortId(uint64_t population_seed, int index) {
  uint64_t state = population_seed;
  util::SplitMix64(state);
  state ^= util::HashString("panoptes-cohort");
  util::SplitMix64(state);
  state ^= static_cast<uint64_t>(index) + 1;
  uint64_t id = util::SplitMix64(state);
  // id 0 names the default cohort; nudge the (astronomically unlikely)
  // collision off it.
  return id == 0 ? 1 : id;
}

std::string DeviceCohort::Label() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "c%04d", index);
  return buf;
}

std::vector<DeviceCohort> PopulationGenerator::Generate(
    const PopulationOptions& options) {
  std::vector<DeviceCohort> cohorts;
  if (options.size <= 0) return cohorts;
  cohorts.reserve(static_cast<size_t>(options.size));

  double weight_total = 0.0;
  for (int i = 0; i < options.size; ++i) {
    // Each cohort draws from its own generator seeded by (seed, index),
    // so cohort k is identical whether the population has 10 or 10000
    // members and regardless of generation order.
    uint64_t cohort_seed = options.seed;
    util::SplitMix64(cohort_seed);
    cohort_seed ^= static_cast<uint64_t>(i) + 0x5EEDC0C0DE17ull;
    util::Rng rng(util::SplitMix64(cohort_seed));

    const ManufacturerEntry& manufacturer =
        kManufacturers[PickWeighted(rng, kManufacturers)];
    const ModelEntry& model =
        manufacturer.models[PickWeighted(rng, manufacturer.models)];
    const VantageEntry& vantage = kVantages[PickWeighted(rng, kVantages)];

    DeviceCohort cohort;
    cohort.index = i;
    cohort.id = DeriveCohortId(options.seed, i);
    cohort.weight = rng.NextExponential(1.0) + 1e-6;

    DeviceProfile& p = cohort.profile;
    p.manufacturer = manufacturer.name;
    p.model = model.model;
    p.device_type = model.device_type;
    p.os = "ANDROID";
    p.os_version = model.os_version;
    p.screen_width = model.screen_width;
    p.screen_height = model.screen_height;
    p.dpi = model.dpi;
    p.timezone = vantage.timezone;
    p.timezone_offset_minutes = vantage.timezone_offset_minutes;
    p.locale = vantage.locale;
    p.country = vantage.country;
    p.city = vantage.city;
    // Jitter the city centroid by up to ±0.05° so cohorts in the same
    // vantage still carry distinct coordinates (distinct PII needles).
    p.latitude = vantage.latitude + (rng.NextDouble() - 0.5) * 0.1;
    p.longitude = vantage.longitude + (rng.NextDouble() - 0.5) * 0.1;
    p.rooted = rng.NextBool(options.rooted_fraction);
    if (rng.NextBool(options.cellular_fraction)) {
      p.connection_type = "CELLULAR";
      p.network_metering = rng.NextBool(options.metered_cellular_fraction)
                               ? "METERED"
                               : "UNMETERED";
    } else {
      p.connection_type = "WIFI";
      p.network_metering = "UNMETERED";
    }
    p.isp = vantage.isp;
    // RFC1918 local address unique-ish per cohort; public address in
    // the vantage ISP's /16.
    p.local_ip = net::IpAddress(
        192, 168, static_cast<uint8_t>(1 + (i / 200) % 250),
        static_cast<uint8_t>(2 + i % 250));
    p.public_ip = net::IpAddress(
        vantage.ip_a, vantage.ip_b,
        static_cast<uint8_t>(rng.NextBelow(256)),
        static_cast<uint8_t>(1 + rng.NextBelow(254)));

    weight_total += cohort.weight;
    cohorts.push_back(std::move(cohort));
  }

  for (DeviceCohort& cohort : cohorts) cohort.weight /= weight_total;
  return cohorts;
}

std::vector<DeviceCohort> PopulationGenerator::Generate(int size,
                                                        uint64_t seed) {
  PopulationOptions options;
  options.size = size;
  options.seed = seed;
  return Generate(options);
}

}  // namespace panoptes::device
