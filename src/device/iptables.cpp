#include "device/iptables.h"

namespace panoptes::device {

void Iptables::Append(IptablesRule rule) { rules_.push_back(std::move(rule)); }

size_t Iptables::DeleteByComment(std::string_view comment) {
  size_t removed = 0;
  for (auto it = rules_.begin(); it != rules_.end();) {
    if (it->comment == comment) {
      it = rules_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void Iptables::Flush() { rules_.clear(); }

RuleAction Iptables::Evaluate(int uid, Protocol protocol,
                              uint16_t dest_port) const {
  for (const auto& rule : rules_) {
    if (rule.uid && *rule.uid != uid) continue;
    if (rule.protocol && *rule.protocol != protocol) continue;
    if (rule.dest_port && *rule.dest_port != dest_port) continue;
    return rule.action;
  }
  return RuleAction::kAccept;
}

IptablesRule Iptables::DivertUidTcp(int uid) {
  IptablesRule rule;
  rule.uid = uid;
  rule.protocol = Protocol::kTcp;
  rule.action = RuleAction::kDivert;
  rule.comment = "panoptes-divert-uid-" + std::to_string(uid);
  return rule;
}

IptablesRule Iptables::BlockQuic() {
  IptablesRule rule;
  rule.protocol = Protocol::kUdp;
  rule.dest_port = 443;
  rule.action = RuleAction::kReject;
  rule.comment = "panoptes-block-quic";
  return rule;
}

}  // namespace panoptes::device
