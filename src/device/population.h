// Synthetic device populations: from the paper's single tablet to N
// heterogeneous users.
//
// The evaluation measures one Samsung SM-T580 from a Greek vantage
// point. A population campaign replays the same browsers over
// thousands of synthesized DeviceProfiles — manufacturer/model/DPI/
// screen sweeps, locale/timezone/geo spread across hemispheres,
// root-status and connection mixes — drawn deterministically from a
// population seed with realistic marginals. Every cohort is a pure
// function of (seed, index): regenerating a population never shuffles
// it, and a cohort's id is derived like the fleet's job-seed scheme so
// snapshots, journals and reports can name cohorts stably across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/profile.h"

namespace panoptes::device {

// Content hash of every DeviceProfile field, FNV-1a + splitmix64
// chained in declaration order (stable across platforms — no
// std::hash). Any field change moves the digest: the fleet folds this
// into per-job seeds and snapshot fingerprints so a cohort sweep can
// never alias another cohort's cache entries.
uint64_t DeviceProfileFingerprint(const DeviceProfile& profile);

// Fingerprint of DeviceProfile::PaperTestbed(), computed once. The
// identity element of the device-aware seed derivation: jobs running
// the paper's testbed derive bit-identical seeds to the pre-population
// scheme, keeping every pinned golden value valid.
uint64_t PaperTestbedFingerprint();

// Stable per-cohort id: splitmix chain over (population_seed, index),
// like DeriveJobSeed. Never returns 0 — id 0 is reserved for the
// default (paper testbed) cohort.
uint64_t DeriveCohortId(uint64_t population_seed, int index);

// One synthetic user group: a device profile plus its share of the
// population. The default-constructed cohort (id 0, weight 1, paper
// testbed profile) is what every non-population fleet job carries;
// reports and snapshots treat it as "no cohort" to stay byte-identical
// with pre-population output.
struct DeviceCohort {
  int index = 0;
  uint64_t id = 0;     // 0 = the default / paper-testbed cohort
  double weight = 1.0; // population share; generated cohorts sum to 1
  DeviceProfile profile = DeviceProfile::PaperTestbed();

  bool IsDefault() const { return id == 0; }
  // "c0042" — filename- and report-safe label (index, zero-padded).
  std::string Label() const;
};

struct PopulationOptions {
  int size = 0;
  uint64_t seed = 20231024;
  // Marginal knobs (defaults follow published mobile-market shapes:
  // a rooted long tail around 5%, roughly a third of sessions on
  // cellular, and most cellular plans metered).
  double rooted_fraction = 0.05;
  double cellular_fraction = 0.35;
  double metered_cellular_fraction = 0.8;
};

class PopulationGenerator {
 public:
  // Deterministically synthesizes `options.size` cohorts. Each cohort
  // draws manufacturer/model/screen/DPI from weighted market marginals,
  // a vantage (country/city/timezone/locale/geo/ISP/public IP block)
  // spanning both hemispheres — negative latitudes, longitudes and
  // UTC offsets included — plus root status and connection type.
  // Weights are an exponential population-mass draw normalized to sum
  // to 1. Same options ⇒ byte-identical population, any call order.
  static std::vector<DeviceCohort> Generate(const PopulationOptions& options);
  static std::vector<DeviceCohort> Generate(int size, uint64_t seed);
};

}  // namespace panoptes::device
