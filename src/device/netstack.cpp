#include "device/netstack.h"

#include "chaos/injector.h"
#include "obs/metrics.h"

namespace panoptes::device {

namespace {

// Device-side failure counters promoted into the metrics registry so a
// degraded run is visible in the Prometheus export, not only in the
// per-framework NetworkStackStats snapshot.
void CountDnsFailure() {
  static obs::Counter& dns_failures =
      obs::MetricsRegistry::Default().GetCounter(
          "panoptes_device_dns_failures_total",
          "Device-side sends aborted by a failed DNS lookup");
  dns_failures.Inc();
}

void CountTlsFailure() {
  static obs::Counter& tls_failures =
      obs::MetricsRegistry::Default().GetCounter(
          "panoptes_device_tls_failures_total",
          "Device-side sends aborted during the TLS handshake");
  tls_failures.Inc();
}

SendError FromVerify(net::TlsVerifyResult result) {
  switch (result) {
    case net::TlsVerifyResult::kOk: return SendError::kNone;
    case net::TlsVerifyResult::kUntrustedIssuer:
      return SendError::kTlsUntrusted;
    case net::TlsVerifyResult::kHostMismatch:
      return SendError::kTlsHostMismatch;
    case net::TlsVerifyResult::kPinMismatch:
      return SendError::kTlsPinMismatch;
  }
  return SendError::kNone;
}

}  // namespace

std::string_view SendErrorName(SendError error) {
  switch (error) {
    case SendError::kNone: return "none";
    case SendError::kDnsFailure: return "dns-failure";
    case SendError::kTlsUntrusted: return "tls-untrusted";
    case SendError::kTlsHostMismatch: return "tls-host-mismatch";
    case SendError::kTlsPinMismatch: return "tls-pin-mismatch";
    case SendError::kTlsHandshakeDrop: return "tls-handshake-drop";
    case SendError::kTimeout: return "timeout";
    case SendError::kNoRoute: return "no-route";
    case SendError::kRejected: return "rejected";
  }
  return "?";
}

NetworkStack::NetworkStack(AndroidDevice* device, net::Network* network,
                           util::SimClock* clock)
    : device_(device), network_(network), clock_(clock) {}

SendOutcome NetworkStack::Send(const net::HttpRequest& request,
                               const SendContext& ctx) {
  ++stats_.sends;

  SendOutcome outcome;
  outcome.request_bytes = request.WireSize();

  const std::string& host = request.url.host();
  auto ip = ctx.resolver->Resolve(host);
  if (!ip) {
    // A failed lookup still costs a resolver round trip.
    clock_->Advance(latency_);
    ++stats_.dns_failures;
    CountDnsFailure();
    traffic_.RecordFailure(ctx.app->uid);
    outcome.error = SendError::kDnsFailure;
    return outcome;
  }
  clock_->Advance(latency_model_ ? latency_model_->RttTo(*ip) : latency_);

  const int uid = ctx.app->uid;
  const uint16_t port = request.url.EffectivePort();
  const bool https = request.url.scheme() == "https";

  // HTTP/3 attempt: QUIC runs over UDP/443 and cannot be intercepted by
  // the MITM, so Panoptes installs a REJECT rule; the browser falls
  // back to TCP exactly like real clients do.
  bool quic_fallback = false;
  if (https && ctx.wants_h3 && network_->SupportsH3(host)) {
    RuleAction udp_action =
        device_->iptables().Evaluate(uid, Protocol::kUdp, 443);
    if (udp_action == RuleAction::kAccept) {
      ++stats_.quic_direct;
      return DirectExchange(request, ctx, *ip, net::HttpVersion::kHttp3);
    }
    ++stats_.quic_blocked;
    quic_fallback = true;
  }

  RuleAction tcp_action =
      device_->iptables().Evaluate(uid, Protocol::kTcp, port);
  if (tcp_action == RuleAction::kReject) {
    traffic_.RecordFailure(uid);
    outcome.error = SendError::kRejected;
    outcome.quic_fallback = quic_fallback;
    return outcome;
  }

  if (tcp_action == RuleAction::kDivert && diverter_ != nullptr) {
    ++stats_.diverted;
    if (https) {
      if (chaos_ != nullptr && chaos_->TlsDrop(host)) {
        // The handshake dies mid-flight before any application data:
        // nothing for the proxy to record, exactly like a pinning
        // failure from the flow ledger's point of view.
        ++stats_.tls_failures;
        CountTlsFailure();
        traffic_.RecordFailure(uid);
        outcome.error = SendError::kTlsHandshakeDrop;
        outcome.quic_fallback = quic_fallback;
        return outcome;
      }
      const net::Certificate& presented =
          diverter_->PresentCertificate(host);
      auto verdict = net::VerifyCertificate(
          presented, host, device_->trust_store(), ctx.app->pins);
      if (verdict != net::TlsVerifyResult::kOk) {
        ++stats_.tls_failures;
        CountTlsFailure();
        if (verdict == net::TlsVerifyResult::kUntrustedIssuer) {
          // The diverter presented a certificate the device rejects:
          // the MITM CA is not in the trust store, so interception
          // fails (the paper's "no CA" failure mode).
          static obs::Counter& ca_failures =
              obs::MetricsRegistry::Default().GetCounter(
                  "panoptes_proxy_ca_failures_total",
                  "Intercepted TLS handshakes rejected because the "
                  "MITM CA is untrusted");
          ca_failures.Inc();
        }
        if (verdict == net::TlsVerifyResult::kPinMismatch) {
          ++stats_.pin_failures;
        }
        traffic_.RecordFailure(uid);
        outcome.error = FromVerify(verdict);
        outcome.quic_fallback = quic_fallback;
        return outcome;
      }
    }
    if (chaos_ != nullptr && chaos_->ServerTimeout(host)) {
      // The server never answers: the client burns the full timeout
      // budget on the simulated clock, then gives up.
      clock_->Advance(chaos_->server_timeout());
      ++stats_.timeouts;
      traffic_.RecordFailure(uid);
      outcome.error = SendError::kTimeout;
      outcome.quic_fallback = quic_fallback;
      return outcome;
    }
    net::ConnectionMeta meta;
    meta.client_ip = device_->profile().public_ip;
    meta.server_ip = *ip;
    meta.sni = host;
    meta.app_uid = uid;
    meta.version = net::HttpVersion::kHttp11;
    meta.time = clock_->Now();
    meta.tls = https;
    meta.chain_id = ctx.chain_id;
    meta.redirect_hop = ctx.redirect_hop;
    outcome.response = diverter_->Forward(request, meta);
    outcome.ok = true;
    outcome.via_proxy = true;
    outcome.version_used = net::HttpVersion::kHttp11;
    outcome.quic_fallback = quic_fallback;
    outcome.response_bytes = outcome.response.WireSize();
    traffic_.RecordExchange(uid, outcome.request_bytes,
                            outcome.response_bytes);
    ++stats_.ok;
    return outcome;
  }

  SendOutcome direct = DirectExchange(
      request, ctx, *ip,
      https ? net::HttpVersion::kHttp2 : net::HttpVersion::kHttp11);
  direct.quic_fallback = quic_fallback;
  return direct;
}

SendOutcome NetworkStack::DirectExchange(const net::HttpRequest& request,
                                         const SendContext& ctx,
                                         net::IpAddress ip,
                                         net::HttpVersion version) {
  SendOutcome outcome;
  outcome.request_bytes = request.WireSize();
  const std::string& host = request.url.host();
  const bool https = request.url.scheme() == "https";

  if (https) {
    if (chaos_ != nullptr && chaos_->TlsDrop(host)) {
      ++stats_.tls_failures;
      CountTlsFailure();
      traffic_.RecordFailure(ctx.app->uid);
      outcome.error = SendError::kTlsHandshakeDrop;
      return outcome;
    }
    const net::Certificate* leaf = network_->LeafFor(host);
    if (leaf == nullptr) {
      traffic_.RecordFailure(ctx.app->uid);
      outcome.error = SendError::kNoRoute;
      return outcome;
    }
    auto verdict = net::VerifyCertificate(*leaf, host, device_->trust_store(),
                                          ctx.app->pins);
    if (verdict != net::TlsVerifyResult::kOk) {
      ++stats_.tls_failures;
      CountTlsFailure();
      if (verdict == net::TlsVerifyResult::kPinMismatch) {
        ++stats_.pin_failures;
      }
      traffic_.RecordFailure(ctx.app->uid);
      outcome.error = FromVerify(verdict);
      return outcome;
    }
  }

  if (chaos_ != nullptr && chaos_->ServerTimeout(host)) {
    clock_->Advance(chaos_->server_timeout());
    ++stats_.timeouts;
    traffic_.RecordFailure(ctx.app->uid);
    outcome.error = SendError::kTimeout;
    return outcome;
  }

  net::ConnectionMeta meta;
  meta.client_ip = device_->profile().public_ip;
  meta.server_ip = ip;
  meta.sni = host;
  meta.app_uid = ctx.app->uid;
  meta.version = version;
  meta.time = clock_->Now();
  meta.tls = https;

  outcome.response = network_->Deliver(ip, request, meta);
  outcome.ok = true;
  outcome.version_used = version;
  outcome.response_bytes = outcome.response.WireSize();
  traffic_.RecordExchange(ctx.app->uid, outcome.request_bytes,
                          outcome.response_bytes);
  ++stats_.ok;
  return outcome;
}

}  // namespace panoptes::device
