#include "device/traffic_stats.h"

namespace panoptes::device {

void TrafficStatsRegistry::RecordExchange(int uid, uint64_t tx_bytes,
                                          uint64_t rx_bytes) {
  auto& entry = by_uid_[uid];
  entry.tx_bytes += tx_bytes;
  entry.rx_bytes += rx_bytes;
  entry.tx_packets += 1;
}

void TrafficStatsRegistry::RecordFailure(int uid) {
  by_uid_[uid].failed_attempts += 1;
}

UidTraffic TrafficStatsRegistry::ForUid(int uid) const {
  auto it = by_uid_.find(uid);
  return it == by_uid_.end() ? UidTraffic{} : it->second;
}

UidTraffic TrafficStatsRegistry::Total() const {
  UidTraffic total;
  for (const auto& [uid, entry] : by_uid_) {
    (void)uid;
    total.tx_bytes += entry.tx_bytes;
    total.rx_bytes += entry.rx_bytes;
    total.tx_packets += entry.tx_packets;
    total.failed_attempts += entry.failed_attempts;
  }
  return total;
}

}  // namespace panoptes::device
