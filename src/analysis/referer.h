// Engine-side history leakage through Referer headers.
//
// The paper's contribution is the *native* channel, but the classic
// engine-side channel — third-party embeds learning the visited page
// through the Referer header — is the baseline privacy folklore the
// native findings are contrasted against. This analysis quantifies it
// on the engine flow store, so audits can show both channels side by
// side.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "proxy/flowstore.h"

namespace panoptes::analysis {

class FlowIndex;

struct RefererLeak {
  std::string third_party_host;  // who learned the visit
  uint64_t requests = 0;         // embed fetches carrying a Referer
  uint64_t distinct_sites = 0;   // how many first parties it saw
};

struct RefererReport {
  uint64_t engine_requests = 0;
  // Cross-site requests whose Referer header revealed the visited page
  // to a third-party host.
  uint64_t leaking_requests = 0;
  std::vector<RefererLeak> leaks;  // per third-party host, most first

  double LeakFraction() const {
    return engine_requests == 0
               ? 0
               : static_cast<double>(leaking_requests) / engine_requests;
  }
};

// Scans an engine flow store (requires a non-compact store: headers
// must have been retained).
RefererReport AnalyzeRefererLeakage(const proxy::FlowStore& engine_flows);

// Index-backed variant: destination registrable domains come from the
// interned host table and referer-host domains are memoized, so the
// PSL walk runs per distinct host instead of per flow. Headers are
// still read from the store; `index` must match it (falls back to the
// store scan when the sizes disagree).
RefererReport AnalyzeRefererLeakage(const proxy::FlowStore& engine_flows,
                                    const FlowIndex& index);

}  // namespace panoptes::analysis
