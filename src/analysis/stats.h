// Traffic statistics backing Figs 2, 3 and 4.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/hostslist.h"
#include "core/campaign.h"

namespace panoptes::analysis {

// Fig 2 row: request counts and the native ratio for one browser.
struct RequestStats {
  std::string browser;
  uint64_t engine_requests = 0;
  uint64_t native_requests = 0;
  double native_ratio = 0;  // native / (native + engine)
};

RequestStats ComputeRequestStats(const core::CrawlResult& result);

// Fig 4 row: outgoing (request) bytes.
struct VolumeStats {
  std::string browser;
  uint64_t engine_bytes = 0;
  uint64_t native_bytes = 0;
  double native_extra_fraction = 0;  // native / engine ("42% extra")
};

VolumeStats ComputeVolumeStats(const core::CrawlResult& result);

// Fig 3 row: classification of the distinct hosts contacted natively.
struct DomainStats {
  std::string browser;
  size_t distinct_hosts = 0;
  size_t third_party_hosts = 0;  // not owned by the browser's vendor
  size_t ad_related_hosts = 0;   // per the hosts list
  double third_party_fraction = 0;
  double ad_related_fraction = 0;
  std::vector<std::string> ad_hosts;  // the offending hosts, sorted
};

// `vendor_domains` lists the registrable domains considered first
// party for this browser (its vendor's own estate); everything else,
// DoH resolvers included, is third party.
DomainStats ComputeDomainStats(const core::CrawlResult& result,
                               const std::vector<std::string>& vendor_domains,
                               const HostsList& hosts_list);

// First-party (vendor-owned) registrable domains per browser name.
std::vector<std::string> VendorDomainsFor(std::string_view browser_name);

}  // namespace panoptes::analysis
