// Idle-timeline shape analysis (Fig 5).
//
// The paper describes two cadence shapes: most browsers' cumulative
// native-request count "grows exponentially within the first minute
// ... before reaching a relative plateau", while Opera's grows
// linearly (news feed). This module fits both models to a measured
// cumulative timeline and classifies which one explains it better, so
// the Fig 5 bench can *verify* the shapes instead of eyeballing them.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace panoptes::analysis {

class FlowIndex;

struct LinearFit {
  double slope = 0;      // requests per second
  double intercept = 0;
  double r2 = 0;         // coefficient of determination
};

// Ordinary least squares over (x, y) pairs; r2 = 1 for a perfect line.
LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys);

struct SaturatingFit {
  double amplitude = 0;    // burst size A in A*(1-exp(-t/tau)) + r*t
  double tau_seconds = 0;
  double plateau_rate = 0; // r, requests per second
  double r2 = 0;
};

// Fits the paper's burst-then-plateau model with a small grid search
// over tau; amplitude and rate are solved by least squares per tau.
SaturatingFit FitSaturating(const std::vector<double>& xs,
                            const std::vector<double>& ys);

enum class TimelineShape { kBurstThenPlateau, kLinear, kQuiet };

std::string_view TimelineShapeName(TimelineShape shape);

struct TimelineAnalysis {
  TimelineShape shape = TimelineShape::kQuiet;
  double first_minute_share = 0;  // fraction of total within 60 s
  LinearFit linear;
  SaturatingFit saturating;
  uint64_t total = 0;
};

// `cumulative` holds the cumulative request count at the end of each
// bucket of width `bucket`.
TimelineAnalysis AnalyzeTimeline(const std::vector<uint64_t>& cumulative,
                                 util::Duration bucket);

// Cumulative flow counts from the index's time-bucket postings, one
// value per FlowIndex::kTimeBucketMillis bucket spanning the first to
// the last occupied bucket. Unlike an IdleResult's run-relative
// timeline, buckets here are absolute (see FlowIndex), so counts come
// straight from the postings without touching the flows.
std::vector<uint64_t> CumulativeByBucket(const FlowIndex& index);

// AnalyzeTimeline over CumulativeByBucket(index).
TimelineAnalysis AnalyzeTimeline(const FlowIndex& index);

}  // namespace panoptes::analysis
