// Cross-site identifier smuggling.
//
// The scenario layer (web/sitegen.h scenario knobs) decorates embeds
// and bounces navigations so a per-site user identifier reaches many
// registrable domains. This analyzer finds such identifiers from the
// traffic alone: any token-like parameter value observed at two or
// more registrable domains is a smuggled identifier candidate, and the
// existing taint split says which carrier moved it — the web engine
// (link decoration, bounce redirects) or the browser's native layer
// (phone-home endpoints re-reporting the decorated URL).
//
// The join runs over the FlowIndex parameter pool — decoded query
// pairs, their Base64-decoded twins and scalar JSON body members — so
// a value hidden inside a Base64-encoded URL report or a JSON
// phone-home body joins against the plain query-parameter sightings
// without any re-decoding here. Confirmed values are then widened by a
// single multi-pattern containment pass (util::MultiScan), catching
// carriers that embed the whole decorated URL as one parameter value.
// Each sighting resolves its redirect-chain provenance through the
// store's redirect_of links back to the chain head.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "proxy/flowstore.h"

namespace panoptes::analysis {

class FlowIndex;

// Which taint side of the capture carried the value.
enum class UidCarrier { kEngine, kNative };

std::string_view UidCarrierName(UidCarrier carrier);

// One observation of a smuggled value in one flow's parameter.
struct UidSighting {
  uint64_t flow_uid = 0;     // provenance uid of the stored flow
  std::string host;          // raw host spelling (first appearance)
  std::string domain;        // registrable domain of that host
  std::string key;           // parameter key that carried the value
  UidCarrier carrier = UidCarrier::kEngine;
  // True when the value was found inside a larger parameter value
  // (containment widening), not as the exact parameter value.
  bool embedded = false;
  // Redirect-chain provenance of the sighting's flow: hop index within
  // its navigation chain, the predecessor flow's uid (0 = chain head
  // or untracked), and the uid of the chain's hop-0 flow, resolved by
  // walking redirect_of links (equal to flow_uid when unchained).
  uint32_t redirect_hop = 0;
  uint64_t redirect_of = 0;
  uint64_t chain_head = 0;
};

struct UidSmugglingFinding {
  std::string value;               // the smuggled identifier
  uint64_t domains = 0;            // distinct registrable domains
  uint64_t engine_sightings = 0;
  uint64_t native_sightings = 0;
  uint64_t embedded_sightings = 0; // via containment widening
  uint64_t chained_sightings = 0;  // on redirect-chain hops (hop > 0)
  uint32_t max_chain_hops = 0;     // deepest hop observed carrying it
  int64_t first_seen_millis = 0;
  int64_t last_seen_millis = 0;
  // Exact sightings first (engine store order, then native), then
  // embedded ones in the same order. Deterministic for a given pair of
  // (store, index) inputs.
  std::vector<UidSighting> sightings;
};

struct UidSmugglingReport {
  uint64_t values_examined = 0;    // distinct token-like values seen
  uint64_t flows_with_chains = 0;  // flows on a redirect hop (hop > 0)
  // Most-travelled first: distinct domains descending, value ascending.
  std::vector<UidSmugglingFinding> findings;

  uint64_t TotalSightings() const {
    uint64_t total = 0;
    for (const auto& finding : findings) total += finding.sightings.size();
    return total;
  }
};

// Joins token-like parameter values across both taint sides. Each
// index must describe its store (entries aligned 1:1 with the store's
// flows); a mismatched pair contributes nothing. Compact stores work:
// the join only needs URLs (kept) and whatever bodies the store
// retained.
UidSmugglingReport AnalyzeUidSmuggling(const proxy::FlowStore& engine_flows,
                                       const FlowIndex& engine_index,
                                       const proxy::FlowStore& native_flows,
                                       const FlowIndex& native_index);

}  // namespace panoptes::analysis
