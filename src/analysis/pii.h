// PII / device-identifier extraction (paper §3.3, Table 2).
//
// Scans natively generated requests — URL parameters and bodies,
// including values that only appear after Base64 decoding — for the
// twelve device fields of Table 2, using keyword+value heuristics the
// way the paper combines regex keyword matching with heuristics.
// The Android version and device model are deliberately NOT tracked:
// every vendor reports them via the User-Agent header for
// compatibility, so the paper excludes them.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "device/profile.h"
#include "proxy/flowstore.h"

namespace panoptes::analysis {

class FlowIndex;

enum class PiiField {
  kDeviceType,
  kManufacturer,
  kTimezone,
  kResolution,
  kLocalIp,
  kDpi,
  kRooted,
  kLocale,
  kCountry,
  kLocation,
  kConnectionType,
  kNetworkType,
};

inline constexpr size_t kPiiFieldCount = 12;
std::string_view PiiFieldName(PiiField field);

struct PiiEvidence {
  PiiField field = PiiField::kDeviceType;
  std::string host;      // destination that received the value
  std::string sample;    // "key=value" or JSON fragment, UTF-8-safe cut
  uint64_t value_hash = 0;  // hash of the FULL (untruncated) value
  // Provenance uid of the FIRST flow that leaked this (field, host,
  // value) triple — see proxy::FlowView::uid. 0 when the scan ran over
  // a live proxy::Flow (no store ordinal yet). Not part of evidence
  // identity: dedup still keys on (field, host, value_hash) only.
  uint64_t flow_uid = 0;
};

// Table 2 row for one browser.
struct PiiReport {
  std::array<bool, kPiiFieldCount> leaked{};
  std::vector<PiiEvidence> evidence;

  bool Leaks(PiiField field) const {
    return leaked[static_cast<size_t>(field)];
  }
  size_t LeakCount() const;
};

class PiiScanner {
 public:
  explicit PiiScanner(device::DeviceProfile profile);

  // Scans every flow in the store (native database).
  PiiReport Scan(const proxy::FlowStore& flows) const;

  // Same report, computed from the pre-parsed index: the query/body
  // decode work was already done once at index build time.
  PiiReport Scan(const FlowIndex& index) const;

  // Scans one flow, appending evidence to `report`. The Flow and
  // FlowView overloads share one implementation and produce identical
  // evidence.
  void ScanFlow(const proxy::Flow& flow, PiiReport& report) const;
  void ScanFlow(const proxy::FlowView& flow, PiiReport& report) const;

 private:
  // Which keyword hints a key carries. Computed once per distinct key:
  // the index interns keys, so the indexed scan caches traits per
  // key_id instead of re-running the substring probes on every value.
  struct KeyTraits;

  static KeyTraits TraitsOf(std::string_view key_hint);
  template <typename FlowT>
  void ScanFlowImpl(const FlowT& flow, PiiReport& report) const;
  // `flow_uid` is the scanned flow's provenance uid (0 when unknown);
  // it rides into PiiEvidence::flow_uid on first sighting.
  void ScanText(std::string_view key_hint, std::string_view value,
                const std::string& host, uint64_t flow_uid,
                PiiReport& report) const;
  void ScanValue(const KeyTraits& traits, std::string_view key_hint,
                 std::string_view value, const std::string& host,
                 uint64_t flow_uid, PiiReport& report) const;

  device::DeviceProfile profile_;
  // Profile-derived needles, rendered once instead of per scanned value.
  std::string resolution_;
  std::string local_ip_;
  std::string locale_underscore_;
  std::string lat_prefix_;
  std::string lon_prefix_;
  std::string dpi_;
};

}  // namespace panoptes::analysis
