#include "analysis/audit.h"

#include "analysis/battery.h"
#include "analysis/flow_index.h"
#include "analysis/report.h"

namespace panoptes::analysis {

bool BrowserAuditReport::LeaksFullUrl() const {
  for (const auto* findings : {&native_leaks, &engine_leaks}) {
    for (const auto& leak : *findings) {
      if (leak.granularity == LeakGranularity::kFullUrl) return true;
    }
  }
  return false;
}

bool BrowserAuditReport::ContactsNonEu() const {
  for (const auto& share : countries) {
    if (!share.eu_member) return true;
  }
  return false;
}

BrowserAuditReport AuditBrowser(core::Framework& framework,
                                const browser::BrowserSpec& spec,
                                const std::vector<const web::Site*>& sites,
                                const HostsList& hosts_list,
                                const GeoIpDb& geo, int analysis_jobs) {
  BrowserAuditReport report;
  report.browser = spec.name;
  report.version = spec.version;
  report.sites_visited = sites.size();

  core::CrawlOptions crawl_options;
  crawl_options.compact_engine_store = false;  // Referer analysis
  auto result = core::RunCrawl(framework, spec, sites, crawl_options);
  report.stack = result.stack_stats;

  // RunCrawl indexed both stores at capture end; every analysis below
  // consumes the pre-parsed columns instead of rescanning the flows.
  // The analyzers are independent — each reads the frozen (stores,
  // indexes) pair and writes its own report field — so the battery may
  // run them concurrently without changing a byte of output.
  PiiScanner scanner(framework.device().profile());

  std::vector<net::Url> visited;
  visited.reserve(sites.size());
  for (const auto* site : sites) visited.push_back(site->landing_url);
  HistoryLeakDetector detector(std::move(visited));

  AnalysisBattery battery(analysis_jobs);
  // Observatory: per-analyzer events land in the framework's journal
  // (when fleet journaling is on), stamped at the frozen post-crawl
  // simulated clock. Counted tasks report their finding counts.
  battery.SetJournal(framework.journal(), framework.clock().Now().millis);
  battery.Add("battery.stats.requests", [&] {
    report.requests = ComputeRequestStats(result);
  });
  battery.Add("battery.stats.volume", [&] {
    report.volume = ComputeVolumeStats(result);
  });
  battery.AddCounted("battery.stats.domains", [&]() -> int64_t {
    report.domains =
        ComputeDomainStats(result, VendorDomainsFor(spec.name), hosts_list);
    return static_cast<int64_t>(report.domains.ad_related_hosts);
  });
  battery.AddCounted("battery.pii", [&]() -> int64_t {
    report.pii = scanner.Scan(*result.native_index);
    return static_cast<int64_t>(report.pii.LeakCount());
  });
  battery.AddCounted("battery.history.native", [&]() -> int64_t {
    report.native_leaks =
        detector.Scan(*result.native_flows, *result.native_index);
    return static_cast<int64_t>(report.native_leaks.size());
  });
  battery.AddCounted("battery.history.engine", [&]() -> int64_t {
    report.engine_leaks =
        detector.Scan(*result.engine_flows, *result.engine_index, true);
    return static_cast<int64_t>(report.engine_leaks.size());
  });
  battery.AddCounted("battery.geo", [&]() -> int64_t {
    report.countries = CountriesContacted(*result.native_index, geo);
    return static_cast<int64_t>(report.countries.size());
  });
  battery.AddCounted("battery.referer", [&]() -> int64_t {
    report.referer =
        AnalyzeRefererLeakage(*result.engine_flows, *result.engine_index);
    return static_cast<int64_t>(report.referer.leaking_requests);
  });
  battery.AddCounted("battery.uid_smuggling", [&]() -> int64_t {
    report.smuggling = AnalyzeUidSmuggling(
        *result.engine_flows, *result.engine_index, *result.native_flows,
        *result.native_index);
    return static_cast<int64_t>(report.smuggling.findings.size());
  });
  battery.Run();
  return report;
}

std::string RenderAuditMarkdown(
    const std::vector<BrowserAuditReport>& reports) {
  std::string out = "# Panoptes browser audit\n\n";

  out += "| Browser | Native ratio | Native bytes | Ad hosts | "
         "Full-URL leak | PII fields | Non-EU contact |\n";
  out += "|---|---|---|---|---|---|---|\n";
  for (const auto& report : reports) {
    out += "| " + report.browser + " | " +
           Ratio(report.requests.native_ratio) + " | +" +
           Percent(report.volume.native_extra_fraction) + " | " +
           std::to_string(report.domains.ad_related_hosts) + " | " +
           (report.LeaksFullUrl() ? "**YES**" : "no") + " | " +
           std::to_string(report.pii.LeakCount()) + " | " +
           (report.ContactsNonEu() ? "yes" : "no") + " |\n";
  }
  out += "\n";

  for (const auto& report : reports) {
    out += "## " + report.browser + " " + report.version + "\n\n";
    out += "- crawled " + std::to_string(report.sites_visited) +
           " sites: " + std::to_string(report.requests.engine_requests) +
           " engine / " + std::to_string(report.requests.native_requests) +
           " native requests (ratio " +
           Ratio(report.requests.native_ratio) + ")\n";
    out += "- distinct native hosts: " +
           std::to_string(report.domains.distinct_hosts) + " (" +
           Percent(report.domains.ad_related_fraction) +
           " ad/analytics-related)\n";

    for (const auto* findings :
         {&report.native_leaks, &report.engine_leaks}) {
      for (const auto& leak : *findings) {
        out += "- history leak → `" + leak.destination_host + "` (" +
               std::string(LeakGranularityName(leak.granularity)) + ", " +
               leak.encoding +
               (leak.persistent_identifier ? ", persistent identifier"
                                           : "") +
               (leak.via_engine_injection ? ", via JS injection" : "") +
               ", " + std::to_string(leak.report_count) + " reports)\n";
      }
    }

    if (report.pii.LeakCount() > 0) {
      out += "- PII leaked natively:";
      for (size_t i = 0; i < kPiiFieldCount; ++i) {
        if (report.pii.leaked[i]) {
          out += " ";
          out += PiiFieldName(static_cast<PiiField>(i));
          out += ";";
        }
      }
      out += "\n";
    }

    if (!report.countries.empty()) {
      out += "- native traffic lands in:";
      for (const auto& share : report.countries) {
        out += " " + share.country_code + "(" +
               std::to_string(share.flows) + ")";
      }
      out += "\n";
    }
    if (report.referer.leaking_requests > 0) {
      out += "- for contrast, the classic engine-side channel: " +
             std::to_string(report.referer.leaking_requests) +
             " cross-site embed fetches carried the visited page in "
             "their Referer\n";
    }
    if (!report.smuggling.findings.empty()) {
      out += "- " + std::to_string(report.smuggling.findings.size()) +
             " identifier value(s) smuggled across registrable domains "
             "(widest reached " +
             std::to_string(report.smuggling.findings.front().domains) +
             " domains)\n";
    }
    if (report.stack.pin_failures > 0) {
      out += "- " + std::to_string(report.stack.pin_failures) +
             " pinned handshakes were lost to the MITM (results are a "
             "lower bound)\n";
    }
    out += "\n";
  }
  return out;
}

}  // namespace panoptes::analysis
