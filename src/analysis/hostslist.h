// Steven Black-style hosts list (paper §3.1 [25]): classifies a
// destination as ad/analytics-related. The default list covers the
// ad/analytics services in the third-party pool plus the vendor-side
// advertising endpoints the paper names.
#pragma once

#include <set>
#include <string>
#include <string_view>

namespace panoptes::analysis {

class HostsList {
 public:
  // The bundled list (simulating the Steven Black unified list with
  // the social/fakenews extensions the paper's classifications imply).
  static HostsList Default();

  // Parses the classic hosts-file syntax: "0.0.0.0 domain" per line,
  // '#' comments.
  static HostsList Parse(std::string_view text);

  void Block(std::string_view domain);

  // True if `host` or any of its parent domains is listed.
  bool IsAdRelated(std::string_view host) const;

  size_t size() const { return blocked_.size(); }

 private:
  std::set<std::string, std::less<>> blocked_;
};

}  // namespace panoptes::analysis
