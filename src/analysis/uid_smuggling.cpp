#include "analysis/uid_smuggling.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "analysis/flow_index.h"
#include "util/multiscan.h"

namespace panoptes::analysis {

std::string_view UidCarrierName(UidCarrier carrier) {
  switch (carrier) {
    case UidCarrier::kEngine: return "engine";
    case UidCarrier::kNative: return "native";
  }
  return "engine";
}

namespace {

// A value can be a smuggled identifier when it looks like a token:
// long enough to be distinctive, alphanumeric (plus -/_), and mixing
// letters with digits — which keeps plain words, pure counters and
// structured values (URLs, paths, JSON) out of the join.
bool TokenLike(std::string_view value) {
  if (value.size() < 8 || value.size() > 128) return false;
  bool digit = false;
  bool alpha = false;
  for (char c : value) {
    if (c >= '0' && c <= '9') {
      digit = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
      alpha = true;
    } else if (c != '-' && c != '_') {
      return false;
    }
  }
  return digit && alpha;
}

bool TextParam(FlowIndex::ParamSource source) {
  return source == FlowIndex::ParamSource::kQuery ||
         source == FlowIndex::ParamSource::kQueryBase64 ||
         source == FlowIndex::ParamSource::kBodyJsonString;
}

struct RawSighting {
  uint8_t side = 0;  // 0 = engine, 1 = native
  uint32_t flow_id = 0;
  uint32_t key_id = 0;
  bool embedded = false;
};

}  // namespace

UidSmugglingReport AnalyzeUidSmuggling(const proxy::FlowStore& engine_flows,
                                       const FlowIndex& engine_index,
                                       const proxy::FlowStore& native_flows,
                                       const FlowIndex& native_index) {
  UidSmugglingReport report;
  const FlowIndex* indexes[2] = {&engine_index, &native_index};
  const proxy::FlowStore* stores[2] = {&engine_flows, &native_flows};
  // An index that doesn't describe its store can't resolve sightings
  // back to flows; treat that side as empty rather than misattribute.
  bool side_ok[2];
  for (int side = 0; side < 2; ++side) {
    side_ok[side] = indexes[side]->flow_count() == stores[side]->size();
  }

  for (int side = 0; side < 2; ++side) {
    if (!side_ok[side]) continue;
    for (const auto& flow : stores[side]->flows()) {
      if (flow.redirect_hop > 0) ++report.flows_with_chains;
    }
  }

  // Phase 1: exact equality join over the parameter pools. std::map
  // keys the groups lexicographically, which fixes finding order
  // before the popularity sort.
  std::map<std::string_view, std::vector<RawSighting>> groups;
  for (int side = 0; side < 2; ++side) {
    if (!side_ok[side]) continue;
    const FlowIndex& index = *indexes[side];
    const auto& params = index.params();
    const auto& entries = index.entries();
    for (uint32_t f = 0; f < entries.size(); ++f) {
      for (uint32_t p = entries[f].param_begin; p < entries[f].param_end;
           ++p) {
        const FlowIndex::Param& param = params[p];
        if (!TextParam(param.source)) continue;
        if (!TokenLike(param.value)) continue;
        groups[param.value].push_back(
            {static_cast<uint8_t>(side), f, param.key_id, false});
      }
    }
  }
  report.values_examined = groups.size();

  // A value is confirmed when its exact sightings span two or more
  // registrable domains — same-value-same-domain is just a site
  // talking to itself.
  struct Confirmed {
    std::string_view value;
    std::vector<RawSighting> sightings;
  };
  std::vector<Confirmed> confirmed;
  for (auto& [value, sightings] : groups) {
    std::set<std::string_view> domains;
    for (const RawSighting& raw : sightings) {
      const FlowIndex& index = *indexes[raw.side];
      domains.insert(index.host(index.entries()[raw.flow_id].host_id).domain);
    }
    if (domains.size() >= 2) {
      confirmed.push_back({value, std::move(sightings)});
    }
  }
  if (confirmed.empty()) return report;

  // Phase 2: containment widening. One multi-pattern pass over both
  // pools catches carriers that ship a confirmed value inside a larger
  // parameter value — a phone-home body quoting the decorated URL, a
  // Base64-decoded URL report, a bounce hop's dest parameter.
  {
    std::vector<std::string> patterns;
    patterns.reserve(confirmed.size());
    for (const Confirmed& c : confirmed) patterns.emplace_back(c.value);
    util::MultiScan scanner(std::move(patterns));
    std::vector<uint32_t> hits;  // distinct pattern ids, per param
    for (int side = 0; side < 2; ++side) {
      if (!side_ok[side]) continue;
      const FlowIndex& index = *indexes[side];
      const auto& params = index.params();
      const auto& entries = index.entries();
      for (uint32_t f = 0; f < entries.size(); ++f) {
        for (uint32_t p = entries[f].param_begin; p < entries[f].param_end;
             ++p) {
          const FlowIndex::Param& param = params[p];
          if (!TextParam(param.source)) continue;
          hits.clear();
          scanner.Scan(param.value, [&](uint32_t id, size_t) {
            if (std::find(hits.begin(), hits.end(), id) == hits.end()) {
              hits.push_back(id);
            }
          });
          std::sort(hits.begin(), hits.end());
          for (uint32_t id : hits) {
            // An occurrence filling the whole value is the exact match
            // phase 1 already recorded.
            if (confirmed[id].value.size() == param.value.size()) continue;
            confirmed[id].sightings.push_back(
                {static_cast<uint8_t>(side), f, param.key_id, true});
          }
        }
      }
    }
  }

  // uid → store ordinal, for the redirect-chain walks.
  std::unordered_map<uint64_t, uint32_t> ordinals[2];
  for (int side = 0; side < 2; ++side) {
    if (!side_ok[side]) continue;
    const auto& flows = stores[side]->flows();
    ordinals[side].reserve(flows.size());
    for (uint32_t i = 0; i < flows.size(); ++i) {
      ordinals[side].emplace(flows[i].uid, i);
    }
  }
  auto chain_head = [&](int side, uint64_t uid) -> uint64_t {
    uint64_t cur = uid;
    // Bounded walk: a chain longer than any the engine follows means a
    // corrupt store; stop rather than loop.
    for (int guard = 0; guard < 64; ++guard) {
      auto it = ordinals[side].find(cur);
      if (it == ordinals[side].end()) break;
      uint64_t pred = stores[side]->flows()[it->second].redirect_of;
      if (pred == 0) break;
      cur = pred;
    }
    return cur;
  };

  report.findings.reserve(confirmed.size());
  for (Confirmed& c : confirmed) {
    UidSmugglingFinding finding;
    finding.value = std::string(c.value);
    std::set<std::string_view> domains;
    bool first = true;
    for (const RawSighting& raw : c.sightings) {
      const FlowIndex& index = *indexes[raw.side];
      const FlowIndex::FlowEntry& entry = index.entries()[raw.flow_id];
      const proxy::FlowView& flow = stores[raw.side]->flows()[raw.flow_id];
      const FlowIndex::HostInfo& host = index.host(entry.host_id);
      UidSighting sighting;
      sighting.flow_uid = entry.uid;
      sighting.host = host.raw;
      sighting.domain = host.domain;
      sighting.key = index.key(raw.key_id);
      sighting.carrier =
          raw.side == 0 ? UidCarrier::kEngine : UidCarrier::kNative;
      sighting.embedded = raw.embedded;
      sighting.redirect_hop = flow.redirect_hop;
      sighting.redirect_of = flow.redirect_of;
      sighting.chain_head = flow.redirect_hop > 0
                                ? chain_head(raw.side, entry.uid)
                                : entry.uid;
      domains.insert(host.domain);
      if (sighting.carrier == UidCarrier::kEngine) {
        ++finding.engine_sightings;
      } else {
        ++finding.native_sightings;
      }
      if (sighting.embedded) ++finding.embedded_sightings;
      if (sighting.redirect_hop > 0) {
        ++finding.chained_sightings;
        finding.max_chain_hops =
            std::max(finding.max_chain_hops, sighting.redirect_hop);
      }
      if (first || entry.time_millis < finding.first_seen_millis) {
        finding.first_seen_millis = entry.time_millis;
      }
      if (first || entry.time_millis > finding.last_seen_millis) {
        finding.last_seen_millis = entry.time_millis;
      }
      first = false;
      finding.sightings.push_back(std::move(sighting));
    }
    finding.domains = domains.size();
    report.findings.push_back(std::move(finding));
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const UidSmugglingFinding& a,
                      const UidSmugglingFinding& b) {
                     if (a.domains != b.domains) return a.domains > b.domains;
                     return a.value < b.value;
                   });
  return report;
}

}  // namespace panoptes::analysis
