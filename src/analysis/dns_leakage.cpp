#include "analysis/dns_leakage.h"

#include "analysis/flow_index.h"
#include "net/psl.h"
#include "util/strings.h"

namespace panoptes::analysis {

namespace {

constexpr const char* kDohProviders[] = {"cloudflare-dns.com",
                                         "dns.google"};

}  // namespace

bool IsDohProviderHost(std::string_view host) {
  // Label-boundary suffix match: covers the provider apex and scoped
  // endpoints like "mozilla.cloudflare-dns.com", case- and trailing-
  // dot-insensitively — but never "notdns.google"-style lookalikes.
  for (const char* provider : kDohProviders) {
    if (net::HostMatchesDomain(host, provider)) return true;
  }
  return false;
}

DnsLeakageReport AnalyzeDnsLeakage(
    const proxy::FlowStore& native_flows,
    const std::set<std::string>& visited_hosts) {
  DnsLeakageReport report;
  for (const auto& flow : native_flows.flows()) {
    if (!IsDohProviderHost(flow.Host()) ||
        flow.url.path() != "/dns-query") {
      continue;
    }

    auto name = flow.url.QueryParam("name");
    if (!name) continue;
    report.uses_doh = true;
    report.provider_host = flow.Host();
    ++report.queries;
    std::string lowered = util::ToLower(*name);
    report.domains_leaked.insert(lowered);
    if (visited_hosts.count(lowered) > 0) {
      ++report.visited_site_lookups;
    }
  }
  return report;
}

DnsLeakageReport AnalyzeDnsLeakage(
    const FlowIndex& native_index,
    const std::set<std::string>& visited_hosts) {
  DnsLeakageReport report;
  auto dns_query_path = native_index.PathId("/dns-query");
  if (!dns_query_path) return report;

  std::vector<bool> is_doh;
  is_doh.reserve(native_index.hosts().size());
  for (const auto& host : native_index.hosts()) {
    is_doh.push_back(IsDohProviderHost(host.raw));
  }

  const auto& params = native_index.params();
  for (const auto& entry : native_index.entries()) {
    if (!is_doh[entry.host_id] || entry.path_id != *dns_query_path) {
      continue;
    }
    // First "name" query parameter, like Url::QueryParam.
    std::optional<std::string_view> name;
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      if (params[p].source == FlowIndex::ParamSource::kQuery &&
          native_index.key(params[p].key_id) == "name") {
        name = params[p].value;
        break;
      }
    }
    if (!name) continue;
    report.uses_doh = true;
    report.provider_host = native_index.host(entry.host_id).raw;
    ++report.queries;
    std::string lowered = util::ToLower(*name);
    report.domains_leaked.insert(lowered);
    if (visited_hosts.count(lowered) > 0) {
      ++report.visited_site_lookups;
    }
  }
  return report;
}

}  // namespace panoptes::analysis
