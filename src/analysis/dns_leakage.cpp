#include "analysis/dns_leakage.h"

#include "util/strings.h"

namespace panoptes::analysis {

namespace {

constexpr const char* kDohProviders[] = {"cloudflare-dns.com",
                                         "dns.google"};

}  // namespace

DnsLeakageReport AnalyzeDnsLeakage(
    const proxy::FlowStore& native_flows,
    const std::set<std::string>& visited_hosts) {
  DnsLeakageReport report;
  for (const auto& flow : native_flows.flows()) {
    bool is_provider = false;
    for (const char* provider : kDohProviders) {
      if (flow.Host() == provider) {
        is_provider = true;
        break;
      }
    }
    if (!is_provider || flow.url.path() != "/dns-query") continue;

    auto name = flow.url.QueryParam("name");
    if (!name) continue;
    report.uses_doh = true;
    report.provider_host = flow.Host();
    ++report.queries;
    std::string lowered = util::ToLower(*name);
    report.domains_leaked.insert(lowered);
    if (visited_hosts.count(lowered) > 0) {
      ++report.visited_site_lookups;
    }
  }
  return report;
}

}  // namespace panoptes::analysis
