// One-call browser audit: everything the paper measures about a
// browser, gathered from a single crawl into one structure, plus a
// Markdown renderer. This is the API a downstream adopter (regulator,
// vendor QA, researcher) calls; the bench binaries print the same
// numbers figure by figure.
#pragma once

#include <string>
#include <vector>

#include "analysis/geoip.h"
#include "analysis/historyleak.h"
#include "analysis/hostslist.h"
#include "analysis/pii.h"
#include "analysis/referer.h"
#include "analysis/stats.h"
#include "analysis/uid_smuggling.h"
#include "browser/spec.h"
#include "core/campaign.h"
#include "core/framework.h"

namespace panoptes::analysis {

struct BrowserAuditReport {
  std::string browser;
  std::string version;
  size_t sites_visited = 0;

  RequestStats requests;       // Fig 2 row
  VolumeStats volume;          // Fig 4 row
  DomainStats domains;         // Fig 3 row
  PiiReport pii;               // Table 2 row
  std::vector<LeakFinding> native_leaks;   // §3.2
  std::vector<LeakFinding> engine_leaks;   // §3.2 (UC-style injection)
  std::vector<CountryShare> countries;     // §3.4
  RefererReport referer;                   // classic engine-side channel
  UidSmugglingReport smuggling;            // cross-site identifier joins
  device::NetworkStackStats stack;         // pinning/QUIC accounting

  bool LeaksFullUrl() const;
  bool ContactsNonEu() const;
};

// Crawls `sites` with `spec` and assembles the report. Uses the
// framework's device profile for the PII scan and its geo plan for the
// country analysis. `analysis_jobs` sets the analyzer battery's worker
// count (analysis/battery.h); any value produces byte-identical
// reports — 1 (the default) runs the analyzers serially.
BrowserAuditReport AuditBrowser(core::Framework& framework,
                                const browser::BrowserSpec& spec,
                                const std::vector<const web::Site*>& sites,
                                const HostsList& hosts_list,
                                const GeoIpDb& geo, int analysis_jobs = 1);

// Renders audits as a Markdown document (one section per browser plus
// a comparison table).
std::string RenderAuditMarkdown(
    const std::vector<BrowserAuditReport>& reports);

}  // namespace panoptes::analysis
