// Columnar analysis index over a FlowStore.
//
// Every analysis in this repo used to rescan the raw flow vector —
// re-parsing query strings, re-decoding Base64 payloads and re-parsing
// JSON bodies once per analyzer. A FlowIndex performs that decode work
// exactly once, in a single pass at capture (or merge) time, and hands
// the analyzers columnar views instead:
//
//   - an interned host table (first-appearance order) carrying, per
//     distinct host, the raw spelling analyzers report, the canonical
//     matching form (net::CanonicalHost) and the registrable domain;
//   - interned query/body parameter keys (original spelling plus an
//     ASCII-lowercased twin for keyword heuristics) and interned URL
//     paths;
//   - a parameter pool holding, per flow, the decoded query pairs, the
//     Base64-decoded twins the PII scanner also inspects, and the
//     scalar JSON body members — in exactly the order the legacy
//     per-flow scans produced them, so indexed analyzers replicate
//     legacy reports byte for byte;
//   - postings: flow ids per host, per app UID and per 10-second time
//     bucket, plus request/response byte totals.
//
// A FlowIndex never holds a pointer to its store: analyzers take
// (store, index) pairs, so stores may be moved, merged or restored from
// snapshots without dangling the index. Append() folds another shard's
// index in (remapping interned ids); Build(A+B) and A.Append(B) are
// byte-identical under SerializeTo, which is what lets the fleet merge
// per-shard indexes instead of re-parsing merged stores.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "proxy/flowstore.h"
#include "util/binio.h"

namespace panoptes::analysis {

class FlowIndex {
 public:
  // Width of the time-bucket postings. Buckets are absolute (floor of
  // the flow timestamp), not run-relative, so merging shards never
  // re-bases them.
  static constexpr int64_t kTimeBucketMillis = 10'000;

  // Where a parameter-pool entry came from. kQueryBase64 entries
  // immediately follow the kQuery entry they were decoded from,
  // mirroring the PII scanner's legacy decode-after-scan order.
  enum class ParamSource : uint8_t {
    kQuery = 0,
    kQueryBase64 = 1,
    kBodyJsonString = 2,
    kBodyJsonNumber = 3,
    kBodyJsonBool = 4,
  };

  struct HostInfo {
    std::string raw;        // first-appearance spelling (reports use this)
    std::string canonical;  // net::CanonicalHost(raw), for matching
    std::string domain;     // net::RegistrableDomain(raw)
  };

  struct Param {
    uint32_t key_id = 0;
    ParamSource source = ParamSource::kQuery;
    std::string value;  // decoded text exactly as analyzers consume it
    double number = 0;  // raw numeric value for kBodyJsonNumber entries
  };

  struct FlowEntry {
    uint32_t host_id = 0;
    uint32_t path_id = 0;
    uint32_t param_begin = 0;  // slice [param_begin, param_end) of params()
    uint32_t param_end = 0;
    int64_t time_millis = 0;
    int32_t app_uid = -1;
    uint32_t server_ip = 0;  // net::IpAddress::value()
    uint64_t request_bytes = 0;
    uint64_t response_bytes = 0;
    bool has_body = false;
    bool body_has_percent = false;  // body contains '%' (form-post decode)
  };

  FlowIndex() = default;

  // Single pass over `store`: parses every URL and JSON body once.
  static FlowIndex Build(const proxy::FlowStore& store);

  // Folds `other` in after this index's flows, remapping interned ids.
  // Equivalent to (and serialized byte-identical with) building one
  // index over the concatenated stores.
  void Append(const FlowIndex& other);

  size_t flow_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<FlowEntry>& entries() const { return entries_; }
  const std::vector<Param>& params() const { return params_; }
  const std::vector<HostInfo>& hosts() const { return hosts_; }
  const HostInfo& host(uint32_t id) const { return hosts_[id]; }
  const std::string& key(uint32_t id) const { return keys_[id]; }
  const std::string& key_lower(uint32_t id) const { return keys_lower_[id]; }
  size_t key_count() const { return keys_.size(); }
  const std::string& path(uint32_t id) const { return paths_[id]; }

  // Interned id of a raw host spelling; nullopt when no flow went there.
  std::optional<uint32_t> HostId(std::string_view raw_host) const;
  // Interned id of a URL path; nullopt when no flow used it.
  std::optional<uint32_t> PathId(std::string_view path) const;

  // Postings: flow ids ascending. by_host() is indexed by host id.
  const std::vector<std::vector<uint32_t>>& by_host() const {
    return flows_by_host_;
  }
  const std::vector<uint32_t>* FlowsToHost(std::string_view raw_host) const;
  const std::map<int32_t, std::vector<uint32_t>>& by_uid() const {
    return flows_by_uid_;
  }
  // Key: absolute bucket start in millis (multiple of kTimeBucketMillis).
  const std::map<int64_t, std::vector<uint32_t>>& by_time_bucket() const {
    return flows_by_bucket_;
  }

  uint64_t request_bytes_total() const { return request_bytes_total_; }
  uint64_t response_bytes_total() const { return response_bytes_total_; }

  // Sorted distinct raw hosts — same contents as
  // FlowStore::DistinctHosts(), without rescanning flows.
  std::vector<std::string> SortedHosts() const;

  // Binary round trip (snapshot payload). Only the interned tables,
  // parameter pool and flow entries are encoded; postings, lookup maps
  // and byte totals are rebuilt on read, so a deserialized index is
  // bit-identical (under SerializeTo) to a freshly built one.
  void SerializeTo(util::BinWriter& out) const;
  static std::unique_ptr<FlowIndex> Deserialize(util::BinReader& in);

 private:
  uint32_t InternHost(const std::string& raw);
  uint32_t InternKey(const std::string& key);
  uint32_t InternPath(const std::string& path);
  void IndexFlow(const proxy::Flow& flow);
  // Inserts postings + totals for entry `flow_id` (already in entries_).
  void AddPostings(uint32_t flow_id);

  std::vector<HostInfo> hosts_;
  std::vector<std::string> keys_;
  std::vector<std::string> keys_lower_;
  std::vector<std::string> paths_;
  std::vector<Param> params_;
  std::vector<FlowEntry> entries_;

  std::vector<std::vector<uint32_t>> flows_by_host_;
  std::map<int32_t, std::vector<uint32_t>> flows_by_uid_;
  std::map<int64_t, std::vector<uint32_t>> flows_by_bucket_;
  uint64_t request_bytes_total_ = 0;
  uint64_t response_bytes_total_ = 0;

  std::map<std::string, uint32_t, std::less<>> host_ids_;
  std::map<std::string, uint32_t, std::less<>> key_ids_;
  std::map<std::string, uint32_t, std::less<>> path_ids_;
};

}  // namespace panoptes::analysis
