// Columnar analysis index over a FlowStore.
//
// Every analysis in this repo used to rescan the raw flow vector —
// re-parsing query strings, re-decoding Base64 payloads and re-parsing
// JSON bodies once per analyzer. A FlowIndex performs that decode work
// exactly once, in a single pass at capture (or merge) time, and hands
// the analyzers columnar views instead:
//
//   - an interned host table (first-appearance order) carrying, per
//     distinct host, the raw spelling analyzers report, the canonical
//     matching form (net::CanonicalHost) and the registrable domain;
//   - interned query/body parameter keys (original spelling plus an
//     ASCII-lowercased twin for keyword heuristics) and interned URL
//     paths;
//   - a parameter pool holding, per flow, the decoded query pairs, the
//     Base64-decoded twins the PII scanner also inspects, and the
//     scalar JSON body members — in exactly the order the legacy
//     per-flow scans produced them, so indexed analyzers replicate
//     legacy reports byte for byte;
//   - postings: flow ids per host, per app UID and per 10-second time
//     bucket, plus request/response byte totals.
//
// A FlowIndex never holds a pointer to its store: analyzers take
// (store, index) pairs, so stores may be moved, merged or restored from
// snapshots without dangling the index. Append() folds another shard's
// index in (remapping interned ids); Build(A+B) and A.Append(B) are
// byte-identical under SerializeTo, which is what lets the fleet merge
// per-shard indexes instead of re-parsing merged stores.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "proxy/flowstore.h"
#include "util/arena.h"
#include "util/binio.h"
#include "util/strings.h"

namespace panoptes::analysis {

class FlowIndex {
 public:
  // Width of the time-bucket postings. Buckets are absolute (floor of
  // the flow timestamp), not run-relative, so merging shards never
  // re-bases them.
  static constexpr int64_t kTimeBucketMillis = 10'000;

  // Where a parameter-pool entry came from. kQueryBase64 entries
  // immediately follow the kQuery entry they were decoded from,
  // mirroring the PII scanner's legacy decode-after-scan order.
  enum class ParamSource : uint8_t {
    kQuery = 0,
    kQueryBase64 = 1,
    kBodyJsonString = 2,
    kBodyJsonNumber = 3,
    kBodyJsonBool = 4,
  };

  struct HostInfo {
    std::string raw;        // first-appearance spelling (reports use this)
    std::string canonical;  // net::CanonicalHost(raw), for matching
    std::string domain;     // net::RegistrableDomain(raw)
  };

  struct Param {
    uint32_t key_id = 0;
    ParamSource source = ParamSource::kQuery;
    // Decoded text exactly as analyzers consume it. The bytes live in
    // the index's text pool (address-stable for the index's lifetime);
    // copies of the index re-pool them.
    std::string_view value;
    double number = 0;  // raw numeric value for kBodyJsonNumber entries
  };

  struct FlowEntry {
    // Provenance uid copied verbatim from the source FlowView (see
    // proxy::MakeProvenanceTag): postings resolve back to the exact
    // stored flow, so analyzer evidence can carry a citable flow_id.
    uint64_t uid = 0;
    uint32_t host_id = 0;
    uint32_t path_id = 0;
    uint32_t param_begin = 0;  // slice [param_begin, param_end) of params()
    uint32_t param_end = 0;
    int64_t time_millis = 0;
    int32_t app_uid = -1;
    uint32_t server_ip = 0;  // net::IpAddress::value()
    uint64_t request_bytes = 0;
    uint64_t response_bytes = 0;
    bool has_body = false;
    bool body_has_percent = false;  // body contains '%' (form-post decode)
  };

  FlowIndex() = default;
  // Paths and parameter values are views into the index's arena-backed
  // text pool, so copies re-pool those bytes instead of copying
  // dangling views; moves keep the arena chunks and stay defaulted.
  FlowIndex(const FlowIndex& other);
  FlowIndex& operator=(const FlowIndex& other);
  FlowIndex(FlowIndex&&) = default;
  FlowIndex& operator=(FlowIndex&&) = default;

  // Single pass over `store`: parses every URL and JSON body once.
  static FlowIndex Build(const proxy::FlowStore& store);

  // Folds `other` in after this index's flows, remapping interned ids.
  // Equivalent to (and serialized byte-identical with) building one
  // index over the concatenated stores.
  void Append(const FlowIndex& other);

 private:
  // Memoizes the by-uid/by-bucket map nodes across consecutive flows:
  // capture order clusters flows by app and by time, so most postings
  // land in the vector the previous flow used. Node pointers into a
  // std::map stay valid across inserts, but the cache must stay local
  // to one bulk operation (Build/Append/Deserialize) or one streaming
  // Cursor — it must not outlive the index or travel with copies.
  struct PostingsCache {
    int32_t uid = 0;
    std::vector<uint32_t>* uid_flows = nullptr;
    int64_t bucket = 0;
    std::vector<uint32_t>* bucket_flows = nullptr;
  };

 public:
  // --- Incremental (streaming) build ------------------------------
  //
  // AddFlow folds one store flow into the index as it is captured; a
  // sequence of AddFlow(store, 0..n-1) is byte-identical (under
  // SerializeTo) to Build(store) over the same n flows. The Cursor
  // carries the per-stream memoization Build keeps on its stack: the
  // store-host-id → index-host-id map and the postings node cache. One
  // cursor per (index, store) stream; it must not outlive either.
  struct Cursor {
    std::vector<uint32_t> host_map;
    PostingsCache cache;
  };
  void AddFlow(const proxy::FlowStore& store, size_t i, Cursor& cursor);

  // Rewind support for visit-retry rollback: MakeCheckpoint captures
  // the current table watermarks, RewindTo discards everything indexed
  // since — entries, params, postings, and any host/key/path interned
  // first by a discarded flow — so the index is byte-identical to one
  // that never saw the rolled-back flows. Text-pool bytes of discarded
  // paths/params stay allocated (views never dangle), mirroring
  // FlowStore::TruncateTo's arena behaviour; serialization writes only
  // live tables, so the slack never reaches a snapshot. Pass the
  // stream's cursor so its host map and node cache are invalidated.
  struct Checkpoint {
    size_t hosts = 0;
    size_t keys = 0;
    size_t paths = 0;
    size_t params = 0;
    size_t entries = 0;
    uint64_t request_bytes = 0;
    uint64_t response_bytes = 0;
  };
  Checkpoint MakeCheckpoint() const;
  void RewindTo(const Checkpoint& checkpoint, Cursor* cursor);

  size_t flow_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<FlowEntry>& entries() const { return entries_; }
  const std::vector<Param>& params() const { return params_; }
  const std::vector<HostInfo>& hosts() const { return hosts_; }
  const HostInfo& host(uint32_t id) const { return hosts_[id]; }
  const std::string& key(uint32_t id) const { return keys_[id]; }
  const std::string& key_lower(uint32_t id) const { return keys_lower_[id]; }
  size_t key_count() const { return keys_.size(); }
  std::string_view path(uint32_t id) const { return paths_[id]; }

  // Interned id of a raw host spelling; nullopt when no flow went there.
  std::optional<uint32_t> HostId(std::string_view raw_host) const;
  // Interned id of a URL path; nullopt when no flow used it.
  std::optional<uint32_t> PathId(std::string_view path) const;

  // Postings: flow ids ascending. by_host() is indexed by host id.
  const std::vector<std::vector<uint32_t>>& by_host() const {
    return flows_by_host_;
  }
  const std::vector<uint32_t>* FlowsToHost(std::string_view raw_host) const;
  const std::map<int32_t, std::vector<uint32_t>>& by_uid() const {
    return flows_by_uid_;
  }
  // Key: absolute bucket start in millis (multiple of kTimeBucketMillis).
  const std::map<int64_t, std::vector<uint32_t>>& by_time_bucket() const {
    return flows_by_bucket_;
  }

  uint64_t request_bytes_total() const { return request_bytes_total_; }
  uint64_t response_bytes_total() const { return response_bytes_total_; }

  // Sorted distinct raw hosts — same contents as
  // FlowStore::DistinctHosts(), without rescanning flows.
  std::vector<std::string> SortedHosts() const;

  // Binary round trip (snapshot payload). Only the interned tables,
  // parameter pool and flow entries are encoded; postings, lookup maps
  // and byte totals are rebuilt on read, so a deserialized index is
  // bit-identical (under SerializeTo) to a freshly built one.
  void SerializeTo(util::BinWriter& out) const;
  static std::unique_ptr<FlowIndex> Deserialize(util::BinReader& in);

 private:
  uint32_t InternHost(std::string_view raw);
  uint32_t InternKey(std::string_view key);
  uint32_t InternPath(std::string_view path);
  // Open-addressing probe of path_slots_; UINT32_MAX when absent.
  uint32_t FindPath(std::string_view path, uint64_t hash) const;
  // Doubles path_slots_ (initial size 64) and re-inserts every path.
  void GrowPathSlots();
  // `host_id` is this index's interned id for flow.Host(); Build
  // resolves it O(1) through the store's host pool instead of a map
  // lookup per flow.
  void IndexFlow(const proxy::FlowView& flow, uint32_t host_id,
                 PostingsCache& cache);
  // Inserts postings + totals for entry `flow_id` (already in entries_).
  void AddPostings(uint32_t flow_id, PostingsCache& cache);

  std::vector<HostInfo> hosts_;
  std::vector<std::string> keys_;
  std::vector<std::string> keys_lower_;
  // Path spellings and decoded parameter values are bump-allocated into
  // one arena (address-stable chunks, two allocations per 64 KiB of
  // text) instead of one heap string each — the pool is written once at
  // build time and only ever read back.
  util::Arena text_pool_{1 << 16};
  std::vector<std::string_view> paths_;
  std::vector<Param> params_;
  std::vector<FlowEntry> entries_;

  std::vector<std::vector<uint32_t>> flows_by_host_;
  std::map<int32_t, std::vector<uint32_t>> flows_by_uid_;
  std::map<int64_t, std::vector<uint32_t>> flows_by_bucket_;
  uint64_t request_bytes_total_ = 0;
  uint64_t response_bytes_total_ = 0;

  // Interning is pure lookup (iteration always walks the id-ordered
  // vectors above), so hashing beats the ordered map's O(log n) string
  // compares — paths especially are long and mostly distinct.
  template <typename V>
  using InternMap =
      std::unordered_map<std::string, V, util::StringHash, std::equal_to<>>;
  InternMap<uint32_t> host_ids_;
  InternMap<uint32_t> key_ids_;
  // Paths (the hottest intern: one lookup per flow, mostly distinct)
  // use a flat open-addressing table instead of a node-based map: each
  // slot packs (hash's high 32 bits | path id + 1), 0 meaning empty,
  // over a power-of-two vector — no per-entry allocation, one cache
  // line per probe, and trivially copyable (ids, not views).
  std::vector<uint64_t> path_slots_;
};

}  // namespace panoptes::analysis
