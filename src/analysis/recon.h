// ReCon-style PII detector (related work [42], Ren et al., MobiSys'16).
//
// The paper's §4 discusses ReCon as a countermeasure: instead of
// matching *known device values* (what PiiScanner does, and what the
// paper's regex methodology does), ReCon trains a classifier on
// labeled flows and recognises PII leaks by the *shape* of keys and
// values — so it generalises to devices it has never seen. This module
// implements that idea as a naive-Bayes classifier over key/value
// shape features, plus a synthetic labeled-corpus generator and an
// evaluation harness. `bench/baseline_recon` compares it against the
// deterministic scanner.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "device/profile.h"
#include "proxy/flow.h"
#include "proxy/flowview.h"
#include "util/rng.h"

namespace panoptes::analysis {

class ReconClassifier {
 public:
  struct Example {
    std::vector<std::string> tokens;
    bool pii = false;
  };

  // Extracts shape features from one flow: lowercase key names and
  // value-shape classes (ip / WxH resolution / coordinate / locale tag
  // / tz path / boolean / enum-word / number / opaque token).
  static std::vector<std::string> Tokenize(const proxy::Flow& flow);
  static std::vector<std::string> Tokenize(const proxy::FlowView& flow);
  static std::vector<std::string> TokenizePair(std::string_view key,
                                               std::string_view value);

  // Multinomial naive Bayes with Laplace smoothing.
  void Train(const std::vector<Example>& examples);

  // P(pii | tokens); 0.5 when untrained.
  double Score(const std::vector<std::string>& tokens) const;

  // A flow with no key/value material cannot leak through parameters,
  // so empty token sets are never flagged (the Score alone would sit
  // at the class prior).
  // 0.55 demands positive evidence: a flow whose tokens are all
  // class-neutral sits at the prior (~0.5) and must not be flagged.
  static constexpr double kThreshold = 0.55;

  bool Predict(const std::vector<std::string>& tokens) const {
    return !tokens.empty() && Score(tokens) > kThreshold;
  }

  size_t vocabulary_size() const { return token_counts_.size(); }
  bool trained() const { return trained_; }

 private:
  struct Counts {
    uint64_t pii = 0;
    uint64_t clean = 0;
  };
  // Transparent comparator: Score() aggregates incoming tokens as
  // string_views and must probe without materialising a std::string.
  std::map<std::string, Counts, std::less<>> token_counts_;
  uint64_t pii_examples_ = 0;
  uint64_t clean_examples_ = 0;
  uint64_t pii_tokens_ = 0;
  uint64_t clean_tokens_ = 0;
  bool trained_ = false;
};

// Synthesises a labeled corpus: PII examples embed device fields under
// randomly spelled keys (as different vendors would name them); clean
// examples are ordinary telemetry/api parameters. Using a *different*
// device profile than the evaluation device is exactly the point — the
// classifier must generalise across devices.
std::vector<ReconClassifier::Example> GenerateTrainingCorpus(
    const device::DeviceProfile& profile, util::Rng& rng, size_t examples);

struct ReconEvaluation {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t true_negatives = 0;
  uint64_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

ReconEvaluation EvaluateRecon(const ReconClassifier& classifier,
                              const std::vector<ReconClassifier::Example>&
                                  examples);

}  // namespace panoptes::analysis
