// Browsing-history leak detection (paper §3.2).
//
// Given the set of URLs a crawl visited and the captured traffic, finds
// destinations that received the visited URL — either the full URL
// (path and query included: the content the user consumed) or just the
// hostname — whether plainly, percent-encoded or Base64-encoded, in
// query parameters or request bodies. Also detects when the reports
// ride together with a persistent identifier (UUID or long hex token),
// which is what lets a vendor track a user across Tor/VPN/IP changes.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "net/url.h"
#include "proxy/flowstore.h"
#include "util/multiscan.h"

namespace panoptes::analysis {

class FlowIndex;

enum class LeakGranularity { kFullUrl, kHostOnly };

std::string_view LeakGranularityName(LeakGranularity granularity);

struct LeakFinding {
  std::string destination_host;    // who received the report
  LeakGranularity granularity = LeakGranularity::kHostOnly;
  uint64_t report_count = 0;       // how many visits were reported
  bool via_engine_injection = false;  // UC-style: rides tainted traffic
  bool persistent_identifier = false; // a stable ID accompanies reports
  std::string identifier_sample;
  std::string encoding;            // "plain", "base64", ...
  std::string sample;              // one example payload fragment
  // Provenance uid (proxy::FlowView::uid) of the flow `sample` was cut
  // from — the citable exhibit `panoptes_cli explain` resolves. 0 when
  // the scan ran without store uids.
  uint64_t flow_uid = 0;
};

class HistoryLeakDetector {
 public:
  // `visited` are the URLs the campaign navigated to.
  explicit HistoryLeakDetector(std::vector<net::Url> visited);

  // Scans a flow store. `engine_store` true marks findings as
  // injection-based (the UC case: leak rides tainted engine traffic to
  // a non-website destination).
  std::vector<LeakFinding> Scan(const proxy::FlowStore& flows,
                                bool engine_store = false) const;

  // Index-backed variant: candidate texts come from the pre-decoded
  // parameter pool; only raw bodies are read back from the store, so
  // `index` must have been built over (or merged from) `flows`. Falls
  // back to the store scan when the two disagree in size.
  std::vector<LeakFinding> Scan(const proxy::FlowStore& flows,
                                const FlowIndex& index,
                                bool engine_store = false) const;

 private:
  struct Hit {
    bool full_url = false;
    std::string encoding;
    std::string sample;
  };

  // Precomputed match targets per visited URL (serialisation and its
  // Base64 form), so scanning is linear in the traffic volume.
  struct VisitedEntry {
    std::string full;
    std::string base64;
    std::string host;
  };

  // Reduces a flow's candidate texts (in scan order) to the hit the
  // legacy nested visited×candidate loop would have reported: the first
  // full-URL hit in (visited, candidate, plain-before-base64) order, or
  // failing that the first host-only hit in (visited, candidate) order.
  // `matched` is set when any hit exists.
  Hit BestHit(const std::vector<std::string_view>& candidates,
              bool& matched) const;

  std::vector<VisitedEntry> visited_;
  std::set<std::string> visited_hosts_;

  // One automaton over every visited URL's plain and Base64 spelling;
  // pattern id = visited_index * 2 + (0 plain | 1 base64), so smaller
  // ids are earlier in the legacy preference order.
  std::unique_ptr<util::MultiScan> needle_scan_;
  // Host-only hits are exact equality, not substring: candidate text ->
  // smallest visited index with that host.
  std::map<std::string, uint32_t, std::less<>> host_min_index_;
};

// True for values shaped like stable identifiers: UUIDs or hex tokens
// of at least 16 characters.
bool LooksLikeIdentifier(std::string_view value);

}  // namespace panoptes::analysis
