// CSV export of analysis results, so downstream tooling (spreadsheets,
// pandas, gnuplot) can consume crawl output without linking the
// library. Quoting follows RFC 4180.
#pragma once

#include <string>
#include <vector>

#include "analysis/stats.h"
#include "core/fleet.h"
#include "core/run_manifest.h"
#include "proxy/flowstore.h"

namespace panoptes::analysis {

// Quotes a single CSV field when needed (commas, quotes, newlines).
std::string CsvField(std::string_view value);

// Renders one CSV document from a header row and data rows.
std::string RenderCsv(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows);

// Fig 2 rows: browser, engine_requests, native_requests, native_ratio.
std::string RequestStatsCsv(const std::vector<RequestStats>& stats);

// Fig 4 rows: browser, engine_bytes, native_bytes, native_extra.
std::string VolumeStatsCsv(const std::vector<VolumeStats>& stats);

// Fig 3 rows: browser, distinct_hosts, third_party_%, ad_%.
std::string DomainStatsCsv(const std::vector<DomainStats>& stats);

// Raw flow dump: one row per flow with its classification.
std::string FlowStoreCsv(const proxy::FlowStore& store);

// Fleet rows: browser, campaign, seed, request counts, ratio, request
// bytes, PII field count. One row per (merged) fleet job result. The
// PII scan of each row searches for the values of *that job's* device
// cohort profile. Population runs (any non-default cohort) gain
// cohort/device/weight columns; default-cohort runs keep the legacy
// nine-column layout byte-identically.
std::string FleetSummaryCsv(const std::vector<core::FleetJobResult>& results);

// Canonical JSON export of a fleet campaign, in result order. Fully
// deterministic for a given result set — the differential harness
// compares serial and parallel runs byte-for-byte on this output.
// Each entry's PII scan uses its job's cohort profile. Population runs
// add a per-entry "cohort" object and a root "population" section of
// weighted aggregates per (browser, campaign); default-cohort runs
// render byte-identically to the pre-population format.
std::string FleetReportJson(const std::vector<core::FleetJobResult>& results);

// The run manifest (degradation ledger) as JSON. Same determinism
// contract as FleetReportJson: simulated time and counts only.
std::string RunManifestJson(const core::RunManifest& manifest);

// UID-smuggling report family (analysis/uid_smuggling.h) over a fleet
// run: per result, the token-like parameter values observed at two or
// more registrable domains, each sighting carrying resolvable flow
// provenance (flow_id, visit, redirect-chain hop/predecessor/head).
// Deterministic for a given result set — the differential harness
// compares serial and parallel runs byte-for-byte on this output too.
// Population runs add a per-entry "cohort" object and a root
// "population" section of weighted per-(browser, campaign) aggregates;
// default-cohort runs omit both.
std::string UidSmugglingReportJson(
    const std::vector<core::FleetJobResult>& results);

// CSV twin: one row per finding (browser, campaign, seed, value,
// domains, carrier/chain counts). Population runs gain cohort/device/
// weight columns.
std::string UidSmugglingCsv(const std::vector<core::FleetJobResult>& results);

// Rolling-window report: answered entirely from the live incremental
// FlowIndex (no flow store, no terminal batch pass) — request counts,
// byte totals, distinct hosts/domains, the cumulative per-time-bucket
// timeline and the PII scan against `profile`'s values. Deterministic
// for a given (index, profile).
std::string WindowReportJson(std::string_view browser,
                             const analysis::FlowIndex& index,
                             const device::DeviceProfile& profile);

}  // namespace panoptes::analysis
