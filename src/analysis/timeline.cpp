#include "analysis/timeline.h"

#include <cmath>

#include "analysis/flow_index.h"

namespace panoptes::analysis {

namespace {

double Mean(const std::vector<double>& values) {
  double sum = 0;
  for (double value : values) sum += value;
  return values.empty() ? 0 : sum / static_cast<double>(values.size());
}

double RSquared(const std::vector<double>& ys,
                const std::vector<double>& predictions) {
  double mean = Mean(ys);
  double ss_total = 0, ss_residual = 0;
  for (size_t i = 0; i < ys.size(); ++i) {
    ss_total += (ys[i] - mean) * (ys[i] - mean);
    ss_residual += (ys[i] - predictions[i]) * (ys[i] - predictions[i]);
  }
  if (ss_total == 0) return 1.0;
  return 1.0 - ss_residual / ss_total;
}

}  // namespace

LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  LinearFit fit;
  if (xs.size() < 2 || xs.size() != ys.size()) return fit;
  double mx = Mean(xs), my = Mean(ys);
  double sxx = 0, sxy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx == 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  std::vector<double> predictions(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    predictions[i] = fit.slope * xs[i] + fit.intercept;
  }
  fit.r2 = RSquared(ys, predictions);
  return fit;
}

SaturatingFit FitSaturating(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  SaturatingFit best;
  best.r2 = -1e18;
  if (xs.size() < 3 || xs.size() != ys.size()) {
    best.r2 = 0;
    return best;
  }
  // Grid over tau; for fixed tau the model y = A*f(t) + r*t is linear
  // in (A, r) — solve the 2x2 normal equations.
  for (double tau : {5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 90.0}) {
    double s_ff = 0, s_ft = 0, s_tt = 0, s_fy = 0, s_ty = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double f = 1.0 - std::exp(-xs[i] / tau);
      double t = xs[i];
      s_ff += f * f;
      s_ft += f * t;
      s_tt += t * t;
      s_fy += f * ys[i];
      s_ty += t * ys[i];
    }
    double det = s_ff * s_tt - s_ft * s_ft;
    if (std::fabs(det) < 1e-12) continue;
    double amplitude = (s_fy * s_tt - s_ty * s_ft) / det;
    double rate = (s_ff * s_ty - s_ft * s_fy) / det;

    std::vector<double> predictions(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      predictions[i] =
          amplitude * (1.0 - std::exp(-xs[i] / tau)) + rate * xs[i];
    }
    double r2 = RSquared(ys, predictions);
    if (r2 > best.r2) {
      best.amplitude = amplitude;
      best.tau_seconds = tau;
      best.plateau_rate = rate;
      best.r2 = r2;
    }
  }
  return best;
}

std::string_view TimelineShapeName(TimelineShape shape) {
  switch (shape) {
    case TimelineShape::kBurstThenPlateau: return "burst-then-plateau";
    case TimelineShape::kLinear: return "linear";
    case TimelineShape::kQuiet: return "quiet";
  }
  return "?";
}

TimelineAnalysis AnalyzeTimeline(const std::vector<uint64_t>& cumulative,
                                 util::Duration bucket) {
  TimelineAnalysis analysis;
  if (cumulative.empty()) return analysis;
  analysis.total = cumulative.back();

  std::vector<double> xs(cumulative.size()), ys(cumulative.size());
  for (size_t i = 0; i < cumulative.size(); ++i) {
    xs[i] = static_cast<double>(i + 1) * bucket.ToSecondsF();
    ys[i] = static_cast<double>(cumulative[i]);
  }
  analysis.linear = FitLinear(xs, ys);
  analysis.saturating = FitSaturating(xs, ys);

  // Share of all requests landing in the first minute.
  size_t buckets_per_minute =
      std::max<size_t>(1, static_cast<size_t>(60.0 / bucket.ToSecondsF()));
  size_t index = std::min(buckets_per_minute, cumulative.size()) - 1;
  if (analysis.total > 0) {
    analysis.first_minute_share =
        static_cast<double>(cumulative[index]) /
        static_cast<double>(analysis.total);
  }

  double duration_minutes = xs.back() / 60.0;
  if (analysis.total < 1.5 * duration_minutes || analysis.total < 6) {
    analysis.shape = TimelineShape::kQuiet;
  } else {
    // A dominant early burst is the signature of the two-phase shape:
    // the first minute holds far more than its proportional share.
    double proportional = 1.0 / duration_minutes;
    bool bursty = analysis.first_minute_share > 2.0 * proportional &&
                  analysis.saturating.amplitude >
                      0.15 * static_cast<double>(analysis.total);
    analysis.shape = bursty ? TimelineShape::kBurstThenPlateau
                            : TimelineShape::kLinear;
  }
  return analysis;
}

std::vector<uint64_t> CumulativeByBucket(const FlowIndex& index) {
  std::vector<uint64_t> cumulative;
  const auto& buckets = index.by_time_bucket();
  if (buckets.empty()) return cumulative;
  int64_t first = buckets.begin()->first;
  int64_t last = buckets.rbegin()->first;
  uint64_t running = 0;
  for (int64_t bucket = first; bucket <= last;
       bucket += FlowIndex::kTimeBucketMillis) {
    auto it = buckets.find(bucket);
    if (it != buckets.end()) running += it->second.size();
    cumulative.push_back(running);
  }
  return cumulative;
}

TimelineAnalysis AnalyzeTimeline(const FlowIndex& index) {
  return AnalyzeTimeline(CumulativeByBucket(index),
                         util::Duration::Millis(FlowIndex::kTimeBucketMillis));
}

}  // namespace panoptes::analysis
