#include "analysis/stats.h"

#include <algorithm>

#include "analysis/flow_index.h"
#include "net/psl.h"

namespace panoptes::analysis {

RequestStats ComputeRequestStats(const core::CrawlResult& result) {
  RequestStats stats;
  stats.browser = result.browser;
  stats.engine_requests = result.engine_flows->size();
  stats.native_requests = result.native_flows->size();
  uint64_t total = stats.engine_requests + stats.native_requests;
  stats.native_ratio =
      total == 0 ? 0 : static_cast<double>(stats.native_requests) / total;
  return stats;
}

VolumeStats ComputeVolumeStats(const core::CrawlResult& result) {
  VolumeStats stats;
  stats.browser = result.browser;
  // Byte totals are accumulated at index-build time; summing the store
  // again only covers results whose index was never built (tests).
  stats.engine_bytes = result.engine_index != nullptr
                           ? result.engine_index->request_bytes_total()
                           : result.engine_flows->RequestBytes();
  stats.native_bytes = result.native_index != nullptr
                           ? result.native_index->request_bytes_total()
                           : result.native_flows->RequestBytes();
  stats.native_extra_fraction =
      stats.engine_bytes == 0
          ? 0
          : static_cast<double>(stats.native_bytes) / stats.engine_bytes;
  return stats;
}

DomainStats ComputeDomainStats(const core::CrawlResult& result,
                               const std::vector<std::string>& vendor_domains,
                               const HostsList& hosts_list) {
  DomainStats stats;
  stats.browser = result.browser;
  auto classify = [&](const std::string& host, const std::string& domain) {
    bool first_party = false;
    for (const auto& vendor_domain : vendor_domains) {
      if (domain == vendor_domain) {
        first_party = true;
        break;
      }
    }
    if (!first_party) ++stats.third_party_hosts;
    if (hosts_list.IsAdRelated(host)) {
      ++stats.ad_related_hosts;
      stats.ad_hosts.push_back(host);
    }
  };
  if (result.native_index != nullptr) {
    // The host table already carries each distinct host with its
    // registrable domain; no flow rescan, no re-derivation.
    stats.distinct_hosts = result.native_index->hosts().size();
    for (const auto& host : result.native_index->hosts()) {
      classify(host.raw, host.domain);
    }
  } else {
    auto hosts = result.native_flows->DistinctHosts();
    stats.distinct_hosts = hosts.size();
    for (const auto& host : hosts) classify(host, net::RegistrableDomain(host));
  }
  std::sort(stats.ad_hosts.begin(), stats.ad_hosts.end());
  if (stats.distinct_hosts > 0) {
    stats.third_party_fraction =
        static_cast<double>(stats.third_party_hosts) / stats.distinct_hosts;
    stats.ad_related_fraction =
        static_cast<double>(stats.ad_related_hosts) / stats.distinct_hosts;
  }
  return stats;
}

std::vector<std::string> VendorDomainsFor(std::string_view browser_name) {
  if (browser_name == "Chrome") {
    return {"google.com", "googleapis.com", "gstatic.com"};
  }
  if (browser_name == "Edge") {
    return {"microsoft.com", "bing.com", "msn.com", "skype.com"};
  }
  if (browser_name == "Opera") {
    return {"opera.com", "opera-api.com", "oleads.com"};
  }
  if (browser_name == "Vivaldi") return {"vivaldi.com"};
  if (browser_name == "Yandex") {
    return {"yandex.net", "yandex.ru", "yandexadexchange.net"};
  }
  if (browser_name == "Brave") return {"brave.com"};
  if (browser_name == "Samsung") {
    return {"samsung.com", "samsungbrowser.com"};
  }
  if (browser_name == "QQ") return {"qq.com"};
  if (browser_name == "DuckDuckGo") return {"duckduckgo.com"};
  if (browser_name == "Dolphin") return {"dolphin-browser.com"};
  if (browser_name == "Whale") return {"naver.com", "naver.net"};
  if (browser_name == "Mint") return {"mi.com", "xiaomi.com"};
  if (browser_name == "Kiwi") {
    return {"kiwibrowser.com", "kiwisearchservices.com"};
  }
  if (browser_name == "CocCoc") return {"coccoc.com", "itim.vn"};
  if (browser_name == "UC International") return {"ucweb.com"};
  return {};
}

}  // namespace panoptes::analysis
