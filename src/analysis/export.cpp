#include "analysis/export.h"

#include <array>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "analysis/flow_index.h"
#include "analysis/pii.h"
#include "analysis/uid_smuggling.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/clock.h"
#include "util/json.h"
#include "util/strings.h"

namespace panoptes::analysis {

namespace {

// Report-generation timing: spans for the trace view plus a histogram
// so slow exports show up in the metrics dump. Timing is telemetry
// only — the rendered report bytes never depend on it.
class ReportTimer {
 public:
  explicit ReportTimer(const char* name)
      : span_(name, "analysis"), start_ns_(util::SteadyNowNanos()) {}
  ~ReportTimer() {
    auto& registry = obs::MetricsRegistry::Default();
    static obs::Counter& reports = registry.GetCounter(
        "panoptes_analysis_reports_total", "Fleet reports rendered");
    static obs::Histogram& seconds = registry.GetHistogram(
        "panoptes_analysis_report_seconds",
        "Wall-clock time to render one fleet report");
    reports.Inc();
    seconds.Observe(
        static_cast<double>(util::SteadyNowNanos() - start_ns_) * 1e-9);
  }

 private:
  obs::ScopedSpan span_;
  int64_t start_ns_;
};

}  // namespace

std::string CsvField(std::string_view value) {
  bool needs_quoting =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(value);
  std::string out = "\"";
  out += util::ReplaceAll(value, "\"", "\"\"");
  out += "\"";
  return out;
}

std::string RenderCsv(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out += ',';
      out += CsvField(cells[i]);
    }
    out += '\n';
  };
  append_row(header);
  for (const auto& row : rows) append_row(row);
  return out;
}

std::string RequestStatsCsv(const std::vector<RequestStats>& stats) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : stats) {
    rows.push_back({row.browser, std::to_string(row.engine_requests),
                    std::to_string(row.native_requests),
                    util::FormatDouble(row.native_ratio, 4)});
  }
  return RenderCsv(
      {"browser", "engine_requests", "native_requests", "native_ratio"},
      rows);
}

std::string VolumeStatsCsv(const std::vector<VolumeStats>& stats) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : stats) {
    rows.push_back({row.browser, std::to_string(row.engine_bytes),
                    std::to_string(row.native_bytes),
                    util::FormatDouble(row.native_extra_fraction, 4)});
  }
  return RenderCsv(
      {"browser", "engine_bytes", "native_bytes", "native_extra_fraction"},
      rows);
}

std::string DomainStatsCsv(const std::vector<DomainStats>& stats) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : stats) {
    rows.push_back({row.browser, std::to_string(row.distinct_hosts),
                    util::FormatDouble(row.third_party_fraction, 4),
                    util::FormatDouble(row.ad_related_fraction, 4),
                    util::Join(row.ad_hosts, ";")});
  }
  return RenderCsv({"browser", "distinct_hosts", "third_party_fraction",
                    "ad_related_fraction", "ad_hosts"},
                   rows);
}

std::string FlowStoreCsv(const proxy::FlowStore& store) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& flow : store.flows()) {
    rows.push_back({util::FormatTimestamp(flow.time),
                    std::string(flow.browser),
                    std::string(proxy::TrafficOriginName(flow.origin)),
                    std::string(net::MethodName(flow.method)),
                    std::string(flow.url.text()),
                    std::to_string(flow.response_status),
                    std::to_string(flow.request_bytes),
                    std::to_string(flow.response_bytes),
                    flow.server_ip.ToString(),
                    flow.blocked ? "blocked" : ""});
  }
  return RenderCsv({"time", "browser", "origin", "method", "url", "status",
                    "request_bytes", "response_bytes", "server_ip", "note"},
                   rows);
}

namespace {

std::string SeedHex(uint64_t seed) {
  std::array<char, 19> buf{};
  std::snprintf(buf.data(), buf.size(), "0x%016llx",
                static_cast<unsigned long long>(seed));
  return std::string(buf.data());
}

// Sorted PII field names leaked by the native store, scanned for the
// values of `profile` — the device the capturing job actually
// simulated, never a hardcoded testbed. The scan runs over the
// prebuilt index when the result carries one; results without an index
// (hand-assembled in tests) get a local single-use build, which the
// scanner consumes identically.
std::vector<std::string> PiiFieldNames(const proxy::FlowStore& native,
                                       const FlowIndex* index,
                                       const device::DeviceProfile& profile) {
  PiiScanner scanner(profile);
  PiiReport report = index != nullptr
                         ? scanner.Scan(*index)
                         : scanner.Scan(FlowIndex::Build(native));
  std::vector<std::string> names;
  for (size_t i = 0; i < kPiiFieldCount; ++i) {
    if (report.leaked[i]) {
      names.emplace_back(PiiFieldName(static_cast<PiiField>(i)));
    }
  }
  return names;
}

// True when any result simulates a synthesized cohort — the switch
// that turns on population columns/sections. A run of default-cohort
// jobs must render byte-identically to the pre-population format.
bool HasPopulation(const std::vector<core::FleetJobResult>& results) {
  for (const auto& result : results) {
    if (!result.job.cohort.IsDefault()) return true;
  }
  return false;
}

// Resolves a finding's flow_uid to the visit (index into `visits`) that
// captured it: the uid's provenance tag picks the store (engine or
// native role of one job attempt) and the ordinal falls in exactly one
// visit's recorded flow range. -1 when no visit matches (idle traffic,
// or uid 0 from a store without provenance tags). Ranges survive
// MergeShards because each VisitRecord keeps its original tag and
// store-local ordinals.
int64_t VisitOfUid(uint64_t uid,
                   const std::vector<core::VisitRecord>& visits) {
  if (uid == 0) return -1;
  const uint32_t tag = static_cast<uint32_t>(uid >> 32);
  const uint32_t ord = static_cast<uint32_t>(uid);
  for (size_t v = 0; v < visits.size(); ++v) {
    const core::VisitRecord& rec = visits[v];
    if (rec.native_tag == tag && ord >= rec.native_flow_begin &&
        ord < rec.native_flow_end) {
      return static_cast<int64_t>(v);
    }
    if (rec.engine_tag == tag && ord >= rec.engine_flow_begin &&
        ord < rec.engine_flow_end) {
      return static_cast<int64_t>(v);
    }
  }
  return -1;
}

// The per-result findings array: one entry per PII evidence record,
// each carrying the full provenance chain of the ISSUE's observatory
// contract — flow_id, job (result index), visit, attempt,
// fault_injected. Everything is computed from data the result always
// carries (stores, visits, attempt count), never from the journal, so
// the report stays byte-identical with journaling on or off.
util::JsonArray FindingsJson(const PiiReport& report,
                             const proxy::FlowStore& store,
                             const std::vector<core::VisitRecord>* visits,
                             size_t job_index, int attempts) {
  std::unordered_map<uint64_t, uint32_t> ordinal_by_uid;
  ordinal_by_uid.reserve(store.size());
  for (uint32_t i = 0; i < store.size(); ++i) {
    ordinal_by_uid.emplace(store.flow(i).uid, i);
  }

  util::JsonArray findings;
  for (const PiiEvidence& evidence : report.evidence) {
    util::JsonObject finding;
    finding["analyzer"] = std::string("pii");
    finding["field"] = std::string(PiiFieldName(evidence.field));
    finding["host"] = evidence.host;
    finding["sample"] = evidence.sample;
    finding["flow_id"] = obs::FlowIdHex(evidence.flow_uid);
    finding["job"] = static_cast<uint64_t>(job_index);
    finding["attempt"] = static_cast<int64_t>(attempts);
    int64_t visit =
        visits != nullptr ? VisitOfUid(evidence.flow_uid, *visits) : -1;
    finding["visit"] = visit;
    auto it = ordinal_by_uid.find(evidence.flow_uid);
    finding["fault_injected"] =
        it != ordinal_by_uid.end() && store.flow(it->second).fault_injected;
    findings.push_back(util::Json(std::move(finding)));
  }
  return findings;
}

}  // namespace

std::string FleetSummaryCsv(
    const std::vector<core::FleetJobResult>& results) {
  ReportTimer timer("analysis.fleet_summary_csv");
  const bool population = HasPopulation(results);
  std::vector<std::vector<std::string>> rows;
  for (const auto& result : results) {
    const device::DeviceProfile& profile = result.job.cohort.profile;
    uint64_t engine = 0, native = 0, engine_bytes = 0, native_bytes = 0;
    double ratio = 0;
    size_t pii = 0;
    if (result.crawl.has_value()) {
      const core::CrawlResult& crawl = *result.crawl;
      engine = crawl.EngineRequestCount();
      native = crawl.NativeRequestCount();
      engine_bytes = crawl.engine_index != nullptr
                         ? crawl.engine_index->request_bytes_total()
                         : crawl.engine_flows->RequestBytes();
      native_bytes = crawl.native_index != nullptr
                         ? crawl.native_index->request_bytes_total()
                         : crawl.native_flows->RequestBytes();
      ratio = crawl.NativeRatio();
      pii = PiiFieldNames(*crawl.native_flows, crawl.native_index.get(),
                          profile)
                .size();
    } else if (result.idle.has_value()) {
      const core::IdleResult& idle = *result.idle;
      native = idle.native_flows->size();
      native_bytes = idle.native_index != nullptr
                         ? idle.native_index->request_bytes_total()
                         : idle.native_flows->RequestBytes();
      ratio = native == 0 ? 0 : 1.0;  // idle traffic is all native
      pii = PiiFieldNames(*idle.native_flows, idle.native_index.get(),
                          profile)
                .size();
    }
    std::vector<std::string> row = {
        result.job.spec.name,
        std::string(core::CampaignKindName(result.job.kind)),
        SeedHex(result.seed), std::to_string(engine), std::to_string(native),
        util::FormatDouble(ratio, 4), std::to_string(engine_bytes),
        std::to_string(native_bytes), std::to_string(pii)};
    if (population) {
      row.push_back(result.job.cohort.Label());
      row.push_back(profile.model);
      row.push_back(util::FormatDouble(result.job.cohort.weight, 6));
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header = {
      "browser", "campaign", "seed", "engine_requests", "native_requests",
      "native_ratio", "engine_bytes", "native_bytes", "pii_fields"};
  if (population) {
    header.insert(header.end(), {"cohort", "device", "cohort_weight"});
  }
  return RenderCsv(header, rows);
}

namespace {

// Population-weighted accumulator for one (browser, campaign) group.
struct PopulationAggregate {
  std::string browser;
  std::string campaign;
  double weight = 0;
  double native_requests = 0;  // sum of w_i * count_i
  double native_ratio = 0;
  double pii_fields = 0;
  std::set<std::string> pii_union;
  uint64_t cohorts = 0;
};

}  // namespace

std::string FleetReportJson(
    const std::vector<core::FleetJobResult>& results) {
  ReportTimer timer("analysis.fleet_report_json");
  const bool population = HasPopulation(results);
  // (browser, campaign) → aggregate, in first-appearance (plan) order.
  std::vector<PopulationAggregate> aggregates;
  auto aggregate_for = [&](const core::FleetJobResult& r)
      -> PopulationAggregate& {
    std::string campaign(core::CampaignKindName(r.job.kind));
    for (auto& agg : aggregates) {
      if (agg.browser == r.job.spec.name && agg.campaign == campaign) {
        return agg;
      }
    }
    aggregates.push_back(
        PopulationAggregate{r.job.spec.name, std::move(campaign)});
    return aggregates.back();
  };
  util::JsonArray entries;
  for (size_t job_index = 0; job_index < results.size(); ++job_index) {
    const auto& result = results[job_index];
    util::JsonObject entry;
    entry["browser"] = result.job.spec.name;
    entry["campaign"] =
        std::string(core::CampaignKindName(result.job.kind));
    entry["seed"] = SeedHex(result.seed);
    if (population && !result.job.cohort.IsDefault()) {
      const device::DeviceCohort& cohort = result.job.cohort;
      util::JsonObject cohort_json;
      cohort_json["label"] = cohort.Label();
      cohort_json["id"] = SeedHex(cohort.id);
      cohort_json["weight"] = cohort.weight;
      cohort_json["manufacturer"] = cohort.profile.manufacturer;
      cohort_json["model"] = cohort.profile.model;
      cohort_json["locale"] = cohort.profile.locale;
      cohort_json["country"] = cohort.profile.country;
      cohort_json["connection"] = cohort.profile.connection_type;
      cohort_json["rooted"] = cohort.profile.rooted;
      entry["cohort"] = util::Json(std::move(cohort_json));
    }
    const device::DeviceProfile& job_profile = result.job.cohort.profile;
    if (result.crawl.has_value()) {
      const core::CrawlResult& crawl = *result.crawl;
      entry["engine_requests"] = crawl.EngineRequestCount();
      entry["native_requests"] = crawl.NativeRequestCount();
      entry["native_ratio"] = crawl.NativeRatio();
      entry["engine_request_bytes"] =
          crawl.engine_index != nullptr
              ? crawl.engine_index->request_bytes_total()
              : crawl.engine_flows->RequestBytes();
      entry["native_request_bytes"] =
          crawl.native_index != nullptr
              ? crawl.native_index->request_bytes_total()
              : crawl.native_flows->RequestBytes();
      entry["incognito_effective"] = crawl.incognito_effective;
      entry["visits"] = static_cast<uint64_t>(crawl.visits.size());
      uint64_t ok = 0;
      for (const auto& visit : crawl.visits) ok += visit.ok ? 1 : 0;
      entry["visits_ok"] = ok;
      util::JsonArray hosts;
      if (crawl.native_index != nullptr) {
        for (auto& host : crawl.native_index->SortedHosts()) {
          hosts.emplace_back(std::move(host));
        }
      } else {
        for (const auto& host : crawl.native_flows->DistinctHosts()) {
          hosts.emplace_back(host);
        }
      }
      entry["native_hosts"] = std::move(hosts);
      PiiScanner scanner(job_profile);
      PiiReport pii_report =
          crawl.native_index != nullptr
              ? scanner.Scan(*crawl.native_index)
              : scanner.Scan(FlowIndex::Build(*crawl.native_flows));
      util::JsonArray pii;
      size_t pii_count = 0;
      for (size_t i = 0; i < kPiiFieldCount; ++i) {
        if (pii_report.leaked[i]) {
          ++pii_count;
          pii.emplace_back(
              std::string(PiiFieldName(static_cast<PiiField>(i))));
        }
      }
      entry["pii_fields"] = std::move(pii);
      entry["findings"] =
          FindingsJson(pii_report, *crawl.native_flows, &crawl.visits,
                       job_index, result.attempts);
      if (population) {
        PopulationAggregate& agg = aggregate_for(result);
        double w = result.job.cohort.weight;
        agg.weight += w;
        agg.native_requests += w * static_cast<double>(
                                       crawl.NativeRequestCount());
        agg.native_ratio += w * crawl.NativeRatio();
        agg.pii_fields += w * static_cast<double>(pii_count);
        for (size_t i = 0; i < kPiiFieldCount; ++i) {
          if (pii_report.leaked[i]) {
            agg.pii_union.insert(
                std::string(PiiFieldName(static_cast<PiiField>(i))));
          }
        }
        ++agg.cohorts;
      }
    } else if (result.idle.has_value()) {
      const core::IdleResult& idle = *result.idle;
      entry["native_requests"] =
          static_cast<uint64_t>(idle.native_flows->size());
      entry["native_request_bytes"] =
          idle.native_index != nullptr
              ? idle.native_index->request_bytes_total()
              : idle.native_flows->RequestBytes();
      util::JsonArray buckets;
      for (uint64_t count : idle.cumulative_by_bucket) {
        buckets.emplace_back(count);
      }
      entry["cumulative_by_bucket"] = std::move(buckets);
      PiiScanner scanner(job_profile);
      PiiReport pii_report =
          idle.native_index != nullptr
              ? scanner.Scan(*idle.native_index)
              : scanner.Scan(FlowIndex::Build(*idle.native_flows));
      util::JsonArray pii;
      size_t pii_count = 0;
      for (size_t i = 0; i < kPiiFieldCount; ++i) {
        if (pii_report.leaked[i]) {
          ++pii_count;
          pii.emplace_back(
              std::string(PiiFieldName(static_cast<PiiField>(i))));
        }
      }
      entry["pii_fields"] = std::move(pii);
      entry["findings"] = FindingsJson(pii_report, *idle.native_flows,
                                       nullptr, job_index, result.attempts);
      if (population) {
        PopulationAggregate& agg = aggregate_for(result);
        double w = result.job.cohort.weight;
        agg.weight += w;
        agg.native_requests +=
            w * static_cast<double>(idle.native_flows->size());
        agg.native_ratio += w * (idle.native_flows->size() == 0 ? 0.0 : 1.0);
        agg.pii_fields += w * static_cast<double>(pii_count);
        for (size_t i = 0; i < kPiiFieldCount; ++i) {
          if (pii_report.leaked[i]) {
            agg.pii_union.insert(
                std::string(PiiFieldName(static_cast<PiiField>(i))));
          }
        }
        ++agg.cohorts;
      }
    }
    entries.push_back(util::Json(std::move(entry)));
  }
  util::JsonObject root;
  root["results"] = std::move(entries);
  if (population) {
    // Population-weighted view: what the *average synthetic user* of
    // this population leaks, per browser and campaign. Weighted means
    // normalize by the group's weight mass so a sharded or partial run
    // still reports per-user expectations.
    util::JsonArray population_json;
    for (const PopulationAggregate& agg : aggregates) {
      util::JsonObject group;
      group["browser"] = agg.browser;
      group["campaign"] = agg.campaign;
      group["cohorts"] = agg.cohorts;
      group["weight"] = agg.weight;
      double norm = agg.weight > 0 ? agg.weight : 1.0;
      group["weighted_native_requests"] = agg.native_requests / norm;
      group["weighted_native_ratio"] = agg.native_ratio / norm;
      group["weighted_pii_fields"] = agg.pii_fields / norm;
      util::JsonArray pii_union;
      for (const std::string& field : agg.pii_union) {
        pii_union.emplace_back(field);
      }
      group["pii_field_union"] = std::move(pii_union);
      population_json.push_back(util::Json(std::move(group)));
    }
    root["population"] = std::move(population_json);
  }
  return util::Json(std::move(root)).Dump();
}

namespace {

// Idle results carry no engine store; the analyzer treats an empty
// (store, index) pair as an empty side, so the native self-join still
// runs (device-fingerprint values shared across vendor domains).
const proxy::FlowStore& EmptyFlowStore() {
  static const proxy::FlowStore empty;
  return empty;
}
const FlowIndex& EmptyFlowIndex() {
  static const FlowIndex empty;
  return empty;
}

// Runs the smuggling analyzer for one fleet result; nullopt when the
// result holds neither a crawl nor idle traffic (quarantined job).
std::optional<UidSmugglingReport> SmugglingFor(
    const core::FleetJobResult& result) {
  if (result.crawl.has_value()) {
    const core::CrawlResult& crawl = *result.crawl;
    if (crawl.engine_index == nullptr || crawl.native_index == nullptr) {
      return AnalyzeUidSmuggling(*crawl.engine_flows,
                                 FlowIndex::Build(*crawl.engine_flows),
                                 *crawl.native_flows,
                                 FlowIndex::Build(*crawl.native_flows));
    }
    return AnalyzeUidSmuggling(*crawl.engine_flows, *crawl.engine_index,
                               *crawl.native_flows, *crawl.native_index);
  }
  if (result.idle.has_value()) {
    const core::IdleResult& idle = *result.idle;
    if (idle.native_index == nullptr) {
      return AnalyzeUidSmuggling(EmptyFlowStore(), EmptyFlowIndex(),
                                 *idle.native_flows,
                                 FlowIndex::Build(*idle.native_flows));
    }
    return AnalyzeUidSmuggling(EmptyFlowStore(), EmptyFlowIndex(),
                               *idle.native_flows, *idle.native_index);
  }
  return std::nullopt;
}

util::JsonObject SightingJson(const UidSighting& sighting,
                              const std::vector<core::VisitRecord>* visits) {
  util::JsonObject out;
  out["flow_id"] = obs::FlowIdHex(sighting.flow_uid);
  out["host"] = sighting.host;
  out["domain"] = sighting.domain;
  out["key"] = sighting.key;
  out["carrier"] = std::string(UidCarrierName(sighting.carrier));
  out["embedded"] = sighting.embedded;
  out["visit"] =
      visits != nullptr ? VisitOfUid(sighting.flow_uid, *visits) : -1;
  if (sighting.redirect_hop > 0) {
    out["hop"] = static_cast<uint64_t>(sighting.redirect_hop);
    out["redirect_of"] = obs::FlowIdHex(sighting.redirect_of);
    out["chain_head"] = obs::FlowIdHex(sighting.chain_head);
  }
  return out;
}

}  // namespace

std::string UidSmugglingReportJson(
    const std::vector<core::FleetJobResult>& results) {
  ReportTimer timer("analysis.uid_smuggling_json");
  const bool population = HasPopulation(results);

  struct SmugglingAggregate {
    std::string browser;
    std::string campaign;
    double weight = 0;
    double findings = 0;   // sum of w_i * finding-count_i
    double sightings = 0;  // sum of w_i * sighting-count_i
    std::set<std::string> value_union;
    uint64_t cohorts = 0;
  };
  std::vector<SmugglingAggregate> aggregates;
  auto aggregate_for =
      [&](const core::FleetJobResult& r) -> SmugglingAggregate& {
    std::string campaign(core::CampaignKindName(r.job.kind));
    for (auto& agg : aggregates) {
      if (agg.browser == r.job.spec.name && agg.campaign == campaign) {
        return agg;
      }
    }
    aggregates.push_back(
        SmugglingAggregate{r.job.spec.name, std::move(campaign)});
    return aggregates.back();
  };

  util::JsonArray entries;
  for (const auto& result : results) {
    auto smuggling = SmugglingFor(result);
    if (!smuggling.has_value()) continue;
    util::JsonObject entry;
    entry["browser"] = result.job.spec.name;
    entry["campaign"] = std::string(core::CampaignKindName(result.job.kind));
    entry["seed"] = SeedHex(result.seed);
    if (population && !result.job.cohort.IsDefault()) {
      const device::DeviceCohort& cohort = result.job.cohort;
      util::JsonObject cohort_json;
      cohort_json["label"] = cohort.Label();
      cohort_json["id"] = SeedHex(cohort.id);
      cohort_json["weight"] = cohort.weight;
      cohort_json["model"] = cohort.profile.model;
      entry["cohort"] = util::Json(std::move(cohort_json));
    }
    entry["values_examined"] = smuggling->values_examined;
    entry["flows_with_chains"] = smuggling->flows_with_chains;
    const std::vector<core::VisitRecord>* visits =
        result.crawl.has_value() ? &result.crawl->visits : nullptr;
    util::JsonArray findings;
    for (const UidSmugglingFinding& finding : smuggling->findings) {
      util::JsonObject finding_json;
      finding_json["value"] = finding.value;
      finding_json["domains"] = finding.domains;
      finding_json["engine_sightings"] = finding.engine_sightings;
      finding_json["native_sightings"] = finding.native_sightings;
      finding_json["embedded_sightings"] = finding.embedded_sightings;
      finding_json["chained_sightings"] = finding.chained_sightings;
      finding_json["max_chain_hops"] =
          static_cast<uint64_t>(finding.max_chain_hops);
      finding_json["first_seen"] = finding.first_seen_millis;
      finding_json["last_seen"] = finding.last_seen_millis;
      util::JsonArray sightings;
      for (const UidSighting& sighting : finding.sightings) {
        sightings.push_back(util::Json(SightingJson(sighting, visits)));
      }
      finding_json["sightings"] = std::move(sightings);
      findings.push_back(util::Json(std::move(finding_json)));
    }
    entry["findings"] = std::move(findings);
    entries.push_back(util::Json(std::move(entry)));

    if (population) {
      SmugglingAggregate& agg = aggregate_for(result);
      double w = result.job.cohort.weight;
      agg.weight += w;
      agg.findings += w * static_cast<double>(smuggling->findings.size());
      agg.sightings += w * static_cast<double>(smuggling->TotalSightings());
      for (const UidSmugglingFinding& finding : smuggling->findings) {
        agg.value_union.insert(finding.value);
      }
      ++agg.cohorts;
    }
  }

  util::JsonObject root;
  root["results"] = std::move(entries);
  if (population) {
    util::JsonArray population_json;
    for (const SmugglingAggregate& agg : aggregates) {
      util::JsonObject group;
      group["browser"] = agg.browser;
      group["campaign"] = agg.campaign;
      group["cohorts"] = agg.cohorts;
      group["weight"] = agg.weight;
      double norm = agg.weight > 0 ? agg.weight : 1.0;
      group["weighted_findings"] = agg.findings / norm;
      group["weighted_sightings"] = agg.sightings / norm;
      util::JsonArray values;
      for (const std::string& value : agg.value_union) {
        values.emplace_back(value);
      }
      group["value_union"] = std::move(values);
      population_json.push_back(util::Json(std::move(group)));
    }
    root["population"] = std::move(population_json);
  }
  return util::Json(std::move(root)).Dump();
}

std::string UidSmugglingCsv(
    const std::vector<core::FleetJobResult>& results) {
  ReportTimer timer("analysis.uid_smuggling_csv");
  const bool population = HasPopulation(results);
  std::vector<std::vector<std::string>> rows;
  for (const auto& result : results) {
    auto smuggling = SmugglingFor(result);
    if (!smuggling.has_value()) continue;
    for (const UidSmugglingFinding& finding : smuggling->findings) {
      std::vector<std::string> row = {
          result.job.spec.name,
          std::string(core::CampaignKindName(result.job.kind)),
          SeedHex(result.seed),
          finding.value,
          std::to_string(finding.domains),
          std::to_string(finding.engine_sightings),
          std::to_string(finding.native_sightings),
          std::to_string(finding.embedded_sightings),
          std::to_string(finding.chained_sightings),
          std::to_string(finding.max_chain_hops)};
      if (population) {
        row.push_back(result.job.cohort.Label());
        row.push_back(result.job.cohort.profile.model);
        row.push_back(util::FormatDouble(result.job.cohort.weight, 6));
      }
      rows.push_back(std::move(row));
    }
  }
  std::vector<std::string> header = {
      "browser", "campaign", "seed", "value", "domains", "engine_sightings",
      "native_sightings", "embedded_sightings", "chained_sightings",
      "max_chain_hops"};
  if (population) {
    header.insert(header.end(), {"cohort", "device", "cohort_weight"});
  }
  return RenderCsv(header, rows);
}

std::string RunManifestJson(const core::RunManifest& manifest) {
  ReportTimer timer("analysis.run_manifest_json");
  return manifest.ToJson();
}

std::string WindowReportJson(std::string_view browser, const FlowIndex& index,
                             const device::DeviceProfile& profile) {
  ReportTimer timer("analysis.window_report_json");
  util::JsonObject root;
  root["browser"] = std::string(browser);
  root["native_requests"] = static_cast<uint64_t>(index.flow_count());
  root["native_request_bytes"] = index.request_bytes_total();
  root["native_response_bytes"] = index.response_bytes_total();

  util::JsonArray hosts;
  for (auto& host : index.SortedHosts()) hosts.emplace_back(std::move(host));
  root["native_hosts"] = std::move(hosts);
  std::set<std::string_view> domains;
  for (const auto& host : index.hosts()) domains.insert(host.domain);
  root["distinct_domains"] = static_cast<uint64_t>(domains.size());

  // Cumulative request count per absolute 10-second bucket (the Fig 5
  // shape, answered from the postings instead of a store rescan).
  util::JsonArray buckets;
  uint64_t cumulative = 0;
  for (const auto& [bucket, flows] : index.by_time_bucket()) {
    util::JsonObject entry;
    entry["t"] = bucket;
    cumulative += flows.size();
    entry["cumulative"] = cumulative;
    buckets.push_back(util::Json(std::move(entry)));
  }
  root["by_time_bucket"] = std::move(buckets);

  PiiScanner scanner(profile);
  PiiReport pii_report = scanner.Scan(index);
  util::JsonArray pii;
  for (size_t i = 0; i < kPiiFieldCount; ++i) {
    if (pii_report.leaked[i]) {
      pii.emplace_back(std::string(PiiFieldName(static_cast<PiiField>(i))));
    }
  }
  root["pii_fields"] = std::move(pii);
  return util::Json(std::move(root)).Dump();
}

}  // namespace panoptes::analysis
