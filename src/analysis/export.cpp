#include "analysis/export.h"

#include "util/clock.h"
#include "util/strings.h"

namespace panoptes::analysis {

std::string CsvField(std::string_view value) {
  bool needs_quoting =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(value);
  std::string out = "\"";
  out += util::ReplaceAll(value, "\"", "\"\"");
  out += "\"";
  return out;
}

std::string RenderCsv(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out += ',';
      out += CsvField(cells[i]);
    }
    out += '\n';
  };
  append_row(header);
  for (const auto& row : rows) append_row(row);
  return out;
}

std::string RequestStatsCsv(const std::vector<RequestStats>& stats) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : stats) {
    rows.push_back({row.browser, std::to_string(row.engine_requests),
                    std::to_string(row.native_requests),
                    util::FormatDouble(row.native_ratio, 4)});
  }
  return RenderCsv(
      {"browser", "engine_requests", "native_requests", "native_ratio"},
      rows);
}

std::string VolumeStatsCsv(const std::vector<VolumeStats>& stats) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : stats) {
    rows.push_back({row.browser, std::to_string(row.engine_bytes),
                    std::to_string(row.native_bytes),
                    util::FormatDouble(row.native_extra_fraction, 4)});
  }
  return RenderCsv(
      {"browser", "engine_bytes", "native_bytes", "native_extra_fraction"},
      rows);
}

std::string DomainStatsCsv(const std::vector<DomainStats>& stats) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : stats) {
    rows.push_back({row.browser, std::to_string(row.distinct_hosts),
                    util::FormatDouble(row.third_party_fraction, 4),
                    util::FormatDouble(row.ad_related_fraction, 4),
                    util::Join(row.ad_hosts, ";")});
  }
  return RenderCsv({"browser", "distinct_hosts", "third_party_fraction",
                    "ad_related_fraction", "ad_hosts"},
                   rows);
}

std::string FlowStoreCsv(const proxy::FlowStore& store) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& flow : store.flows()) {
    rows.push_back({util::FormatTimestamp(flow.time), flow.browser,
                    std::string(proxy::TrafficOriginName(flow.origin)),
                    std::string(net::MethodName(flow.method)),
                    flow.url.Serialize(),
                    std::to_string(flow.response_status),
                    std::to_string(flow.request_bytes),
                    std::to_string(flow.response_bytes),
                    flow.server_ip.ToString(),
                    flow.blocked ? "blocked" : ""});
  }
  return RenderCsv({"time", "browser", "origin", "method", "url", "status",
                    "request_bytes", "response_bytes", "server_ip", "note"},
                   rows);
}

}  // namespace panoptes::analysis
