#include "analysis/hostslist.h"

#include "net/psl.h"
#include "util/strings.h"
#include "web/thirdparty.h"

namespace panoptes::analysis {

HostsList HostsList::Default() {
  HostsList list;
  for (const auto& service : web::ThirdPartyPool()) {
    if (service.kind == web::ThirdPartyKind::kAd ||
        service.kind == web::ThirdPartyKind::kAnalytics) {
      list.Block(service.domain);
    }
  }
  // Vendor-side advertising endpoints the paper names or implies.
  list.Block("oleads.com");              // Opera ad SDK (Listing 1)
  list.Block("yandexadexchange.net");    // Yandex mobile ad exchange
  list.Block("graph.facebook.com");      // Graph API (§3.5 Dolphin/Mint)
  return list;
}

HostsList HostsList::Parse(std::string_view text) {
  HostsList list;
  for (const auto& raw_line : util::Split(text, '\n')) {
    std::string_view line = util::Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto fields = util::SplitNonEmpty(line, ' ');
    if (fields.size() == 2 &&
        (fields[0] == "0.0.0.0" || fields[0] == "127.0.0.1")) {
      list.Block(fields[1]);
    } else if (fields.size() == 1) {
      list.Block(fields[0]);
    }
  }
  return list;
}

void HostsList::Block(std::string_view domain) {
  blocked_.emplace(net::CanonicalHost(domain));
}

bool HostsList::IsAdRelated(std::string_view host) const {
  // Canonical form first (case, trailing dot), then walk parent labels;
  // dropping whole labels keeps the match label-boundary-aware — a
  // blocked "example.com" can never match "notexample.com".
  std::string current = net::CanonicalHost(host);
  while (true) {
    if (blocked_.find(current) != blocked_.end()) return true;
    size_t dot = current.find('.');
    if (dot == std::string::npos) return false;
    current = current.substr(dot + 1);
  }
}

}  // namespace panoptes::analysis
