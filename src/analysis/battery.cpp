#include "analysis/battery.h"

#include <atomic>
#include <thread>
#include <utility>

#include "obs/journal.h"
#include "obs/tracer.h"

namespace panoptes::analysis {

void AnalysisBattery::Add(std::string name, std::function<void()> fn) {
  tasks_.push_back(Task{std::move(name), std::move(fn), {}});
}

void AnalysisBattery::AddCounted(std::string name,
                                 std::function<int64_t()> fn) {
  tasks_.push_back(Task{std::move(name), {}, std::move(fn)});
}

void AnalysisBattery::SetJournal(obs::Journal* journal, int64_t sim_millis) {
  journal_ = journal;
  journal_millis_ = sim_millis;
}

void AnalysisBattery::Run() {
  obs::ScopedSpan span("battery.run", "battery");
  span.Arg("tasks", static_cast<int64_t>(tasks_.size()));
  span.Arg("jobs", static_cast<int64_t>(jobs_));

  // Each task writes only its own slot, so workers never contend and
  // the counts come out identical under any schedule.
  std::vector<int64_t> counts(tasks_.size(), -1);
  auto run_task = [&counts, this](size_t i) {
    const Task& task = tasks_[i];
    obs::ScopedSpan task_span(task.name, "battery");
    if (task.counted_fn) {
      counts[i] = task.counted_fn();
    } else {
      task.fn();
    }
  };

  if (jobs_ <= 1 || tasks_.size() <= 1) {
    for (size_t i = 0; i < tasks_.size(); ++i) run_task(i);
  } else {
    // Short-lived pool: the calling thread works too, so `jobs_` is the
    // worker count, not the spawn count. Tasks are claimed off an
    // atomic cursor; since every task writes disjoint state, claim
    // order (and thus scheduling) cannot leak into results.
    std::atomic<size_t> next{0};
    auto worker = [&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks_.size()) return;
        run_task(i);
      }
    };

    size_t extra = static_cast<size_t>(jobs_) - 1;
    if (extra > tasks_.size() - 1) extra = tasks_.size() - 1;
    std::vector<std::thread> threads;
    threads.reserve(extra);
    for (size_t i = 0; i < extra; ++i) threads.emplace_back(worker);
    worker();
    for (std::thread& thread : threads) thread.join();
  }

  // Emit after the barrier, in registration order, so the journal is
  // byte-identical at any `jobs_` (worker emission would interleave).
  if (journal_ != nullptr) {
    for (size_t i = 0; i < tasks_.size(); ++i) {
      journal_->Emit(journal_millis_, "battery", "analyzer_begin")
          .Str("name", tasks_[i].name);
      auto end = journal_->Emit(journal_millis_, "battery", "analyzer_end");
      end.Str("name", tasks_[i].name);
      if (counts[i] >= 0) end.Num("findings", counts[i]);
    }
  }
}

}  // namespace panoptes::analysis
