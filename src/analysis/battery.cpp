#include "analysis/battery.h"

#include <atomic>
#include <thread>
#include <utility>

#include "obs/tracer.h"

namespace panoptes::analysis {

void AnalysisBattery::Add(std::string name, std::function<void()> fn) {
  tasks_.push_back(Task{std::move(name), std::move(fn)});
}

void AnalysisBattery::Run() {
  obs::ScopedSpan span("battery.run", "battery");
  span.Arg("tasks", static_cast<int64_t>(tasks_.size()));
  span.Arg("jobs", static_cast<int64_t>(jobs_));

  auto run_task = [](const Task& task) {
    obs::ScopedSpan task_span(task.name, "battery");
    task.fn();
  };

  if (jobs_ <= 1 || tasks_.size() <= 1) {
    for (const Task& task : tasks_) run_task(task);
    return;
  }

  // Short-lived pool: the calling thread works too, so `jobs_` is the
  // worker count, not the spawn count. Tasks are claimed off an atomic
  // cursor; since every task writes disjoint state, claim order (and
  // thus scheduling) cannot leak into results.
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks_.size()) return;
      run_task(tasks_[i]);
    }
  };

  size_t extra = static_cast<size_t>(jobs_) - 1;
  if (extra > tasks_.size() - 1) extra = tasks_.size() - 1;
  std::vector<std::thread> threads;
  threads.reserve(extra);
  for (size_t i = 0; i < extra; ++i) threads.emplace_back(worker);
  worker();
  for (std::thread& thread : threads) thread.join();
}

}  // namespace panoptes::analysis
