#include "analysis/report.h"

#include <algorithm>

#include "analysis/flow_index.h"
#include "util/strings.h"

namespace panoptes::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) line += "  ";
      line += cells[i];
      line.append(widths[i] - cells[i].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Ratio(double value, int decimals) {
  return util::FormatDouble(value, decimals);
}

std::string Percent(double fraction, int decimals) {
  return util::FormatDouble(fraction * 100.0, decimals) + "%";
}

std::string Bytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  return util::FormatDouble(value, unit == 0 ? 0 : 1) + " " + units[unit];
}

namespace {

std::string Millis(double seconds) {
  return util::FormatDouble(seconds * 1000.0, 1) + " ms";
}

}  // namespace

std::string FleetSummaryTable(
    const std::vector<core::FleetJobResult>& results,
    const core::FleetRunStats* stats, const core::RunManifest* manifest) {
  TextTable table(
      {"Browser", "Campaign", "Engine", "Native", "Ratio", "Native bytes"});
  for (const auto& result : results) {
    if (result.crawl.has_value()) {
      const core::CrawlResult& crawl = *result.crawl;
      table.AddRow({result.job.spec.name,
                    std::string(core::CampaignKindName(result.job.kind)),
                    std::to_string(crawl.EngineRequestCount()),
                    std::to_string(crawl.NativeRequestCount()),
                    Ratio(crawl.NativeRatio()),
                    Bytes(crawl.native_index != nullptr
                              ? crawl.native_index->request_bytes_total()
                              : crawl.native_flows->RequestBytes())});
    } else if (result.idle.has_value()) {
      const core::IdleResult& idle = *result.idle;
      table.AddRow({result.job.spec.name,
                    std::string(core::CampaignKindName(result.job.kind)),
                    "0", std::to_string(idle.native_flows->size()), "-",
                    Bytes(idle.native_index != nullptr
                              ? idle.native_index->request_bytes_total()
                              : idle.native_flows->RequestBytes())});
    }
  }
  std::string out = table.Render();
  if (stats != nullptr && stats->workers > 0) {
    size_t jobs = stats->job_seconds.size();
    out += "fleet: " + std::to_string(jobs) + " job" +
           (jobs == 1 ? "" : "s") + " over " +
           std::to_string(stats->workers) + " worker" +
           (stats->workers == 1 ? "" : "s") + " in " +
           util::FormatDouble(stats->wall_seconds, 2) + " s (job p50 " +
           Millis(stats->JobLatencyQuantile(0.5)) + ", p95 " +
           Millis(stats->JobLatencyQuantile(0.95)) + ")\n";
    out += "worker jobs:";
    for (size_t i = 0; i < stats->jobs_per_worker.size(); ++i) {
      out += " w" + std::to_string(i) + "=" +
             std::to_string(stats->jobs_per_worker[i]);
    }
    out += "\n";
  }
  if (manifest != nullptr && manifest->Degraded()) {
    out += "degraded run (chaos profile \"" + manifest->chaos_profile +
           "\"): " + std::to_string(manifest->total_faults) +
           " faults injected";
    if (!manifest->faults_by_kind.empty()) {
      out += " (";
      bool first = true;
      for (const auto& [kind, count] : manifest->faults_by_kind) {
        if (!first) out += ", ";
        out += kind + "=" + std::to_string(count);
        first = false;
      }
      out += ")";
    }
    out += "\n";
    out += "self-healing: " + std::to_string(manifest->total_visit_retries) +
           " visit retries, " + std::to_string(manifest->total_job_retries) +
           " job retries, " + std::to_string(manifest->total_failed_visits) +
           " failed visits, " + std::to_string(manifest->quarantined_jobs) +
           " quarantined jobs, " +
           std::to_string(manifest->flow_writes_dropped) +
           " dropped flow writes, backoff " +
           std::to_string(manifest->backoff_millis) + " ms (simulated)\n";
  }
  if (manifest != nullptr && manifest->cache_enabled) {
    out += "cache: " + std::to_string(manifest->cache_hits) + " hits, " +
           std::to_string(manifest->cache_misses) + " misses, " +
           std::to_string(manifest->cache_writes) + " writes, " +
           std::to_string(manifest->cache_invalidated) + " invalidated\n";
  }
  return out;
}

}  // namespace panoptes::analysis
