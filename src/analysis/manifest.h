// Declarative experiment manifests: describe a measurement campaign as
// JSON (which browsers, crawl or idle, incognito or not, how many
// sites), run it with one call, get structured JSON results back.
// This is how the CLI exposes "bring your own experiment" without
// writing C++ (panoptes_cli run-manifest campaign.json).
//
// Lives in analysis (not core) because each entry's result is already
// analysed: split ratio, leak destinations, PII field count.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace panoptes::analysis {

enum class ManifestMode { kCrawl, kIdle };

struct ManifestEntry {
  std::string browser;   // display name from Table 1
  ManifestMode mode = ManifestMode::kCrawl;
  bool incognito = false;
  int64_t idle_minutes = 10;  // idle entries only
};

struct Manifest {
  uint64_t seed = 20231024;
  int popular_sites = 50;
  int sensitive_sites = 50;
  std::vector<ManifestEntry> entries;

  // Parses {"seed":..,"popular_sites":..,"sensitive_sites":..,
  //         "entries":[{"browser":"Yandex","mode":"crawl",
  //                     "incognito":false,"idle_minutes":10}, ...]}.
  // Returns nullopt on structural errors, unknown browsers or modes.
  static std::optional<Manifest> FromJson(std::string_view text);

  std::string ToJson() const;
};

struct ManifestEntryResult {
  ManifestEntry entry;
  bool incognito_effective = false;
  uint64_t engine_requests = 0;
  uint64_t native_requests = 0;
  double native_ratio = 0;
  uint64_t full_url_leak_destinations = 0;
  uint64_t host_only_leak_destinations = 0;
  uint64_t pii_fields = 0;
};

struct ManifestResult {
  std::vector<ManifestEntryResult> entries;

  std::string ToJson() const;
};

// Builds a fresh framework from the manifest's dataset parameters and
// executes every entry in order.
ManifestResult RunManifest(const Manifest& manifest);

}  // namespace panoptes::analysis
