// IP-to-geolocation database and the §3.4 international-transfer
// analysis: where do the servers receiving native traffic live, and do
// browsing-history reports leave the EU?
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/geo.h"
#include "proxy/flowstore.h"

namespace panoptes::analysis {

class FlowIndex;

struct GeoInfo {
  std::string country_code;
  std::string country_name;
  bool eu_member = false;
};

class GeoIpDb {
 public:
  GeoIpDb() = default;
  explicit GeoIpDb(std::vector<net::GeoRange> ranges);

  void AddRange(net::GeoRange range);

  std::optional<GeoInfo> Lookup(net::IpAddress ip) const;

  size_t range_count() const { return ranges_.size(); }

 private:
  std::vector<net::GeoRange> ranges_;
};

// One destination country's share of a browser's native traffic.
struct CountryShare {
  std::string country_code;
  std::string country_name;
  bool eu_member = false;
  uint64_t flows = 0;
  std::vector<std::string> hosts;  // distinct destinations there
};

// Groups a native flow store's destinations by country.
std::vector<CountryShare> CountriesContacted(const proxy::FlowStore& flows,
                                             const GeoIpDb& db);

// Index-backed variant: the (linear-scan) geo lookup runs once per
// distinct server IP instead of once per flow.
std::vector<CountryShare> CountriesContacted(const FlowIndex& index,
                                             const GeoIpDb& db);

// The §3.4 question: for the given destination hosts (the ones found
// leaking history), report the hosting country and whether it is
// outside the EU.
struct TransferFinding {
  std::string host;
  std::string country_code;
  std::string country_name;
  bool outside_eu = false;
};

std::vector<TransferFinding> ClassifyTransfers(
    const proxy::FlowStore& flows, const std::vector<std::string>& hosts,
    const GeoIpDb& db);

// Index-backed variant: per-host flows come from the host postings
// instead of a full store scan per queried host.
std::vector<TransferFinding> ClassifyTransfers(
    const FlowIndex& index, const std::vector<std::string>& hosts,
    const GeoIpDb& db);

}  // namespace panoptes::analysis
