#include "analysis/recon.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string_view>

#include "util/json.h"
#include "util/strings.h"

namespace panoptes::analysis {

namespace {

bool IsNumber(std::string_view value) {
  if (value.empty()) return false;
  for (char c : value) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

bool LooksLikeIpValue(std::string_view value) {
  // Four dot-separated octets, each 0-255. Version strings such as
  // "113.0.5672.77" also have three dots but fail the octet range.
  int octets = 0;
  size_t start = 0;
  while (true) {
    size_t dot = value.find('.', start);
    std::string_view part = value.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start);
    if (part.empty() || part.size() > 3) return false;
    int number = 0;
    for (char c : part) {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
      number = number * 10 + (c - '0');
    }
    if (number > 255) return false;
    ++octets;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return octets == 4;
}

bool LooksLikeResolution(std::string_view value) {
  size_t x = value.find('x');
  if (x == std::string_view::npos || x == 0 || x + 1 >= value.size()) {
    return false;
  }
  return IsNumber(value.substr(0, x)) && IsNumber(value.substr(x + 1));
}

bool LooksLikeLocaleTag(std::string_view value) {
  // xx-XX or xx_XX
  if (value.size() != 5) return false;
  char sep = value[2];
  if (sep != '-' && sep != '_') return false;
  return std::islower(static_cast<unsigned char>(value[0])) &&
         std::islower(static_cast<unsigned char>(value[1])) &&
         std::isupper(static_cast<unsigned char>(value[3])) &&
         std::isupper(static_cast<unsigned char>(value[4]));
}

bool LooksLikeCoordinate(std::string_view value) {
  // Signed decimal with exactly one dot and >= 2 fractional digits
  // ("35.3387"); version strings have several dots.
  size_t dot = value.find('.');
  if (dot == std::string_view::npos || value.size() - dot - 1 < 2) {
    return false;
  }
  if (value.find('.', dot + 1) != std::string_view::npos) return false;
  return IsNumber(value);
}

bool LooksLikeTimezonePath(std::string_view value) {
  size_t slash = value.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= value.size()) {
    return false;
  }
  return std::isupper(static_cast<unsigned char>(value[0])) &&
         std::isupper(static_cast<unsigned char>(value[slash + 1]));
}

bool IsUpperWord(std::string_view value) {
  if (value.empty() || value.size() > 12) return false;
  for (char c : value) {
    if (std::isupper(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

std::string ValueShape(std::string_view value) {
  if (LooksLikeIpValue(value)) return "shape:ip";
  if (LooksLikeResolution(value)) return "shape:resolution";
  if (LooksLikeCoordinate(value)) return "shape:coordinate";
  if (LooksLikeLocaleTag(value)) return "shape:locale";
  if (LooksLikeTimezonePath(value)) return "shape:tzpath";
  if (value == "true" || value == "false") return "shape:boolean";
  if (IsUpperWord(value)) return "shape:enumword";
  if (IsNumber(value)) return "shape:number";
  return "shape:opaque";
}

}  // namespace

std::vector<std::string> ReconClassifier::TokenizePair(
    std::string_view key, std::string_view value) {
  std::vector<std::string> tokens;
  const std::string key_lower = util::ToLower(key);
  const std::string shape = ValueShape(value);
  tokens.push_back("key:" + key_lower);
  tokens.push_back(shape);
  // Conjunction feature: key together with the value shape carries the
  // signal ("lat" + coordinate is telling; "price" + coordinate not).
  tokens.push_back("pair:" + key_lower + "|" + shape);
  return tokens;
}

namespace {

template <typename FlowT>
std::vector<std::string> TokenizeImpl(const FlowT& flow) {
  std::vector<std::string> tokens;
  auto append = [&](std::string_view key, std::string_view value) {
    for (auto& token : ReconClassifier::TokenizePair(key, value)) {
      tokens.push_back(std::move(token));
    }
  };
  for (const auto& [key, value] : flow.url.QueryParams()) {
    append(key, value);
  }
  if (!flow.request_body.empty()) {
    if (auto json = util::Json::Parse(flow.request_body);
        json && json->is_object()) {
      for (const auto& [key, value] : json->as_object()) {
        if (value.is_string()) {
          append(key, value.as_string());
        } else if (value.is_number()) {
          append(key, value.Dump());
        } else if (value.is_bool()) {
          append(key, value.as_bool() ? "true" : "false");
        }
      }
    }
  }
  return tokens;
}

}  // namespace

std::vector<std::string> ReconClassifier::Tokenize(const proxy::Flow& flow) {
  return TokenizeImpl(flow);
}

std::vector<std::string> ReconClassifier::Tokenize(
    const proxy::FlowView& flow) {
  return TokenizeImpl(flow);
}

void ReconClassifier::Train(const std::vector<Example>& examples) {
  for (const auto& example : examples) {
    if (example.pii) {
      ++pii_examples_;
    } else {
      ++clean_examples_;
    }
    for (const auto& token : example.tokens) {
      auto& counts = token_counts_[token];
      if (example.pii) {
        ++counts.pii;
        ++pii_tokens_;
      } else {
        ++counts.clean;
        ++clean_tokens_;
      }
    }
  }
  trained_ = pii_examples_ > 0 && clean_examples_ > 0;
}

double ReconClassifier::Score(
    const std::vector<std::string>& tokens) const {
  if (!trained_) return 0.5;
  // Single log-likelihood-ratio accumulator over *unique* tokens:
  // duplicates are aggregated first (sorted map), then each unique
  // token contributes count × its per-token log ratio. That makes the
  // score exactly invariant to token order — two separate running sums
  // accumulate rounding in permutation-dependent ways — and a sum of
  // logs cannot underflow the way a probability product would on
  // multi-thousand-token flows.
  double vocabulary = static_cast<double>(token_counts_.size()) + 1.0;
  // trained_ guarantees both class counts are positive, so the Laplace
  // denominators and the prior ratio below are finite and nonzero.
  double llr = std::log(static_cast<double>(pii_examples_)) -
               std::log(static_cast<double>(clean_examples_));
  std::map<std::string_view, uint64_t> unique;
  for (const auto& token : tokens) ++unique[token];
  for (const auto& [token, count] : unique) {
    auto it = token_counts_.find(token);
    double pii_count =
        it == token_counts_.end() ? 0 : static_cast<double>(it->second.pii);
    double clean_count =
        it == token_counts_.end() ? 0 : static_cast<double>(it->second.clean);
    double contribution =
        std::log((pii_count + 1.0) /
                 (static_cast<double>(pii_tokens_) + vocabulary)) -
        std::log((clean_count + 1.0) /
                 (static_cast<double>(clean_tokens_) + vocabulary));
    llr += static_cast<double>(count) * contribution;
  }
  // Clamp before the sigmoid: beyond ±700, exp() overflows to inf and
  // the division would return NaN instead of a saturated 0 or 1.
  llr = std::clamp(llr, -700.0, 700.0);
  return 1.0 / (1.0 + std::exp(-llr));
}

std::vector<ReconClassifier::Example> GenerateTrainingCorpus(
    const device::DeviceProfile& profile, util::Rng& rng,
    size_t examples) {
  auto pick = [&](std::initializer_list<const char*> options) {
    std::vector<const char*> v(options);
    return std::string(v[rng.NextBelow(v.size())]);
  };

  std::vector<ReconClassifier::Example> corpus;
  corpus.reserve(examples);
  std::string resolution = std::to_string(profile.screen_width) + "x" +
                           std::to_string(profile.screen_height);

  for (size_t i = 0; i < examples; ++i) {
    ReconClassifier::Example example;
    example.pii = rng.NextBool(0.5);

    auto add_pair = [&](std::string_view key, std::string_view value) {
      for (auto& token : ReconClassifier::TokenizePair(key, value)) {
        example.tokens.push_back(std::move(token));
      }
    };

    // Background noise in every example, shaped like real telemetry
    // (timestamps, package names, version strings, batched blobs).
    int noise = static_cast<int>(rng.NextBelow(4)) + 2;
    for (int n = 0; n < noise; ++n) {
      switch (rng.NextBelow(9)) {
        case 0: add_pair(rng.NextToken(4), rng.NextToken(8)); break;
        case 1: add_pair("page", std::to_string(rng.NextBelow(50))); break;
        case 2: add_pair("session", rng.NextHex(12)); break;
        case 3:
          add_pair("ts", std::to_string(1680000000 + rng.NextBelow(9999999)));
          break;
        case 4:
          add_pair("app", "com." + rng.NextToken(5) + "." + rng.NextToken(7));
          break;
        case 5: add_pair("batch", rng.NextToken(40)); break;
        case 6:
          add_pair("v", std::to_string(rng.NextBelow(20)) + "." +
                            std::to_string(rng.NextBelow(9)) + "." +
                            std::to_string(rng.NextBelow(999)));
          break;
        case 7:
          // DoH lookups: the most common benign query on a phone.
          add_pair("name", rng.NextToken(7) + ".com");
          add_pair("type", "A");
          break;
        default: add_pair("host", rng.NextToken(7) + ".com"); break;
      }
    }

    if (example.pii) {
      switch (rng.NextBelow(9)) {
        case 0:
          add_pair(pick({"lip", "local_ip", "localIp", "clientip"}),
                   profile.local_ip.ToString());
          break;
        case 1:
          add_pair(pick({"res", "screen", "display", "wh"}), resolution);
          break;
        case 2:
          add_pair(pick({"lat", "latitude"}),
                   util::FormatDouble(profile.latitude, 4));
          add_pair(pick({"lon", "lng", "longitude"}),
                   util::FormatDouble(profile.longitude, 4));
          break;
        case 3:
          add_pair(pick({"locale", "lang", "languageTag"}), profile.locale);
          break;
        case 4:
          add_pair(pick({"tz", "timezone"}), profile.timezone);
          break;
        case 5:
          add_pair(pick({"rooted", "is_rooted", "jailbroken"}),
                   profile.rooted ? "true" : "false");
          break;
        case 6:
          add_pair(pick({"net", "conn", "network_type"}),
                   pick({"WIFI", "CELLULAR"}));
          break;
        default:
          add_pair(pick({"devtype", "device_type"}),
                   pick({"TABLET", "PHONE"}));
      }
    }
    corpus.push_back(std::move(example));
  }
  return corpus;
}

double ReconEvaluation::Precision() const {
  uint64_t denom = true_positives + false_positives;
  return denom == 0 ? 0 : static_cast<double>(true_positives) / denom;
}

double ReconEvaluation::Recall() const {
  uint64_t denom = true_positives + false_negatives;
  return denom == 0 ? 0 : static_cast<double>(true_positives) / denom;
}

double ReconEvaluation::F1() const {
  double p = Precision(), r = Recall();
  return (p + r) == 0 ? 0 : 2 * p * r / (p + r);
}

ReconEvaluation EvaluateRecon(
    const ReconClassifier& classifier,
    const std::vector<ReconClassifier::Example>& examples) {
  ReconEvaluation eval;
  for (const auto& example : examples) {
    bool predicted = classifier.Predict(example.tokens);
    if (predicted && example.pii) ++eval.true_positives;
    if (predicted && !example.pii) ++eval.false_positives;
    if (!predicted && !example.pii) ++eval.true_negatives;
    if (!predicted && example.pii) ++eval.false_negatives;
  }
  return eval;
}

}  // namespace panoptes::analysis
