#include "analysis/manifest.h"

#include "analysis/historyleak.h"
#include "analysis/pii.h"
#include "analysis/stats.h"
#include "browser/profiles.h"
#include "core/campaign.h"
#include "core/framework.h"
#include "util/json.h"

namespace panoptes::analysis {

namespace {

std::string_view ModeName(ManifestMode mode) {
  return mode == ManifestMode::kCrawl ? "crawl" : "idle";
}

std::optional<ManifestMode> ParseMode(std::string_view name) {
  if (name == "crawl") return ManifestMode::kCrawl;
  if (name == "idle") return ManifestMode::kIdle;
  return std::nullopt;
}

}  // namespace

std::optional<Manifest> Manifest::FromJson(std::string_view text) {
  auto json = util::Json::Parse(text);
  if (!json || !json->is_object()) return std::nullopt;

  Manifest manifest;
  if (const auto* seed = json->Find("seed");
      seed != nullptr && seed->is_number()) {
    manifest.seed = static_cast<uint64_t>(seed->as_number());
  }
  if (const auto* popular = json->Find("popular_sites");
      popular != nullptr && popular->is_number()) {
    manifest.popular_sites = static_cast<int>(popular->as_number());
  }
  if (const auto* sensitive = json->Find("sensitive_sites");
      sensitive != nullptr && sensitive->is_number()) {
    manifest.sensitive_sites = static_cast<int>(sensitive->as_number());
  }
  if (manifest.popular_sites < 0 || manifest.sensitive_sites < 0 ||
      manifest.popular_sites + manifest.sensitive_sites == 0) {
    return std::nullopt;
  }

  const auto* entries = json->Find("entries");
  if (entries == nullptr || !entries->is_array() ||
      entries->as_array().empty()) {
    return std::nullopt;
  }
  for (const auto& item : entries->as_array()) {
    if (!item.is_object()) return std::nullopt;
    ManifestEntry entry;
    const auto* name = item.Find("browser");
    if (name == nullptr || !name->is_string()) return std::nullopt;
    entry.browser = name->as_string();
    if (browser::FindSpec(entry.browser) == nullptr) return std::nullopt;

    if (const auto* mode = item.Find("mode");
        mode != nullptr && mode->is_string()) {
      auto parsed = ParseMode(mode->as_string());
      if (!parsed) return std::nullopt;
      entry.mode = *parsed;
    }
    if (const auto* incognito = item.Find("incognito");
        incognito != nullptr && incognito->is_bool()) {
      entry.incognito = incognito->as_bool();
    }
    if (const auto* minutes = item.Find("idle_minutes");
        minutes != nullptr && minutes->is_number()) {
      entry.idle_minutes = static_cast<int64_t>(minutes->as_number());
      if (entry.idle_minutes <= 0) return std::nullopt;
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

std::string Manifest::ToJson() const {
  util::JsonObject root;
  root["seed"] = static_cast<int64_t>(seed);
  root["popular_sites"] = popular_sites;
  root["sensitive_sites"] = sensitive_sites;
  util::JsonArray entry_array;
  for (const auto& entry : entries) {
    util::JsonObject object;
    object["browser"] = entry.browser;
    object["mode"] = std::string(ModeName(entry.mode));
    object["incognito"] = entry.incognito;
    if (entry.mode == ManifestMode::kIdle) {
      object["idle_minutes"] = entry.idle_minutes;
    }
    entry_array.push_back(util::Json(std::move(object)));
  }
  root["entries"] = std::move(entry_array);
  return util::Json(std::move(root)).Dump();
}

std::string ManifestResult::ToJson() const {
  util::JsonArray array;
  for (const auto& result : entries) {
    util::JsonObject object;
    object["browser"] = result.entry.browser;
    object["mode"] = std::string(ModeName(result.entry.mode));
    object["incognito_requested"] = result.entry.incognito;
    object["incognito_effective"] = result.incognito_effective;
    object["engine_requests"] = static_cast<int64_t>(result.engine_requests);
    object["native_requests"] = static_cast<int64_t>(result.native_requests);
    object["native_ratio"] = result.native_ratio;
    object["full_url_leak_destinations"] =
        static_cast<int64_t>(result.full_url_leak_destinations);
    object["host_only_leak_destinations"] =
        static_cast<int64_t>(result.host_only_leak_destinations);
    object["pii_fields"] = static_cast<int64_t>(result.pii_fields);
    array.push_back(util::Json(std::move(object)));
  }
  util::JsonObject root;
  root["results"] = std::move(array);
  return util::Json(std::move(root)).Dump();
}

ManifestResult RunManifest(const Manifest& manifest) {
  core::FrameworkOptions options;
  options.seed = manifest.seed;
  options.catalog.popular_count = manifest.popular_sites;
  options.catalog.sensitive_count = manifest.sensitive_sites;
  core::Framework framework(options);

  std::vector<const web::Site*> sites;
  std::vector<net::Url> visited;
  for (const auto& site : framework.catalog().sites()) {
    sites.push_back(&site);
    visited.push_back(site.landing_url);
  }
  HistoryLeakDetector detector(visited);
  PiiScanner scanner(framework.device().profile());

  ManifestResult result;
  for (const auto& entry : manifest.entries) {
    const auto* spec = browser::FindSpec(entry.browser);
    ManifestEntryResult entry_result;
    entry_result.entry = entry;

    if (entry.mode == ManifestMode::kCrawl) {
      core::CrawlOptions crawl_options;
      crawl_options.incognito = entry.incognito;
      auto crawl = core::RunCrawl(framework, *spec, sites, crawl_options);
      entry_result.incognito_effective = crawl.incognito_effective;
      entry_result.engine_requests = crawl.engine_flows->size();
      entry_result.native_requests = crawl.native_flows->size();
      entry_result.native_ratio = crawl.NativeRatio();
      for (const auto* store :
           {crawl.native_flows.get(), crawl.engine_flows.get()}) {
        bool engine = store == crawl.engine_flows.get();
        for (const auto& leak : detector.Scan(*store, engine)) {
          if (leak.granularity == LeakGranularity::kFullUrl) {
            ++entry_result.full_url_leak_destinations;
          } else {
            ++entry_result.host_only_leak_destinations;
          }
        }
      }
      entry_result.pii_fields =
          scanner.Scan(*crawl.native_flows).LeakCount();
    } else {
      core::IdleOptions idle_options;
      idle_options.duration = util::Duration::Minutes(entry.idle_minutes);
      auto idle = core::RunIdle(framework, *spec, idle_options);
      entry_result.native_requests = idle.native_flows->size();
      entry_result.native_ratio = 1.0;  // idle traffic is all native
      entry_result.pii_fields =
          scanner.Scan(*idle.native_flows).LeakCount();
    }
    result.entries.push_back(std::move(entry_result));
  }
  return result;
}

}  // namespace panoptes::analysis
