// Concurrent analyzer battery.
//
// A browser audit runs half a dozen independent analyses (PII scan,
// history-leak scans, geo attribution, Referer leakage, traffic stats)
// over immutable inputs — the crawl's flow stores and their FlowIndexes
// are frozen once capture ends, and every analyzer writes its own
// report field. That makes the battery embarrassingly parallel: tasks
// share nothing but const data, so any schedule produces byte-identical
// reports (the determinism test in tests/core_determinism_test.cpp pins
// concurrent against serial execution).
//
// The battery mirrors the fleet executor's shape one level down: a
// short-lived pool of workers pulling tasks off an atomic cursor. Each
// task runs under its own obs::ScopedSpan, so a trace of an audit shows
// per-analyzer wall time whichever thread ran it.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace panoptes::analysis {

class AnalysisBattery {
 public:
  // `jobs` <= 1 runs tasks serially, in Add() order, on the caller's
  // thread (the reference schedule). More jobs never changes results —
  // only which thread runs which analyzer.
  explicit AnalysisBattery(int jobs = 1) : jobs_(jobs) {}

  // Registers one analyzer. `name` becomes the task's span name
  // (category "battery"). Tasks must not touch another task's outputs;
  // inputs they share must stay unmutated for the battery's lifetime.
  void Add(std::string name, std::function<void()> fn);

  // Runs every registered task exactly once and returns when all are
  // done. May be called once per battery.
  void Run();

  size_t task_count() const { return tasks_.size(); }

 private:
  struct Task {
    std::string name;
    std::function<void()> fn;
  };

  int jobs_;
  std::vector<Task> tasks_;
};

}  // namespace panoptes::analysis
