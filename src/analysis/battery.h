// Concurrent analyzer battery.
//
// A browser audit runs half a dozen independent analyses (PII scan,
// history-leak scans, geo attribution, Referer leakage, traffic stats)
// over immutable inputs — the crawl's flow stores and their FlowIndexes
// are frozen once capture ends, and every analyzer writes its own
// report field. That makes the battery embarrassingly parallel: tasks
// share nothing but const data, so any schedule produces byte-identical
// reports (the determinism test in tests/core_determinism_test.cpp pins
// concurrent against serial execution).
//
// The battery mirrors the fleet executor's shape one level down: a
// short-lived pool of workers pulling tasks off an atomic cursor. Each
// task runs under its own obs::ScopedSpan, so a trace of an audit shows
// per-analyzer wall time whichever thread ran it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace panoptes::obs {
class Journal;
}  // namespace panoptes::obs

namespace panoptes::analysis {

class AnalysisBattery {
 public:
  // `jobs` <= 1 runs tasks serially, in Add() order, on the caller's
  // thread (the reference schedule). More jobs never changes results —
  // only which thread runs which analyzer.
  explicit AnalysisBattery(int jobs = 1) : jobs_(jobs) {}

  // Registers one analyzer. `name` becomes the task's span name
  // (category "battery"). Tasks must not touch another task's outputs;
  // inputs they share must stay unmutated for the battery's lifetime.
  void Add(std::string name, std::function<void()> fn);

  // Counted form: the task returns its finding count, reported in the
  // journal's per-analyzer end event. Plain Add() tasks report -1
  // (count not applicable).
  void AddCounted(std::string name, std::function<int64_t()> fn);

  // Observatory (strictly additive — results are byte-identical with
  // or without it). The battery runs tasks concurrently, so rather
  // than emitting from worker threads it records each task's finding
  // count into a private slot and, once Run() completes, emits one
  // analyzer_begin/analyzer_end pair per task in registration order,
  // all stamped at `sim_millis` (the audit's frozen simulated clock —
  // wall time is scheduling-dependent and must never reach the
  // journal). Null disables.
  void SetJournal(obs::Journal* journal, int64_t sim_millis);

  // Runs every registered task exactly once and returns when all are
  // done. May be called once per battery.
  void Run();

  size_t task_count() const { return tasks_.size(); }

 private:
  struct Task {
    std::string name;
    std::function<void()> fn;        // exactly one of fn/counted_fn set
    std::function<int64_t()> counted_fn;
  };

  int jobs_;
  std::vector<Task> tasks_;
  obs::Journal* journal_ = nullptr;  // not owned
  int64_t journal_millis_ = 0;
};

}  // namespace panoptes::analysis
