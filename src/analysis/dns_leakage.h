// DNS-channel analysis (§3.2, DNS paragraph): 8 of the 15 browsers
// resolve visited domains through Cloudflare's or Google's
// DNS-over-HTTPS service — which means the resolver operator, a party
// the user never chose, learns every domain the user visits. This
// module quantifies that channel from the native flow store.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "proxy/flowstore.h"

namespace panoptes::analysis {

class FlowIndex;

struct DnsLeakageReport {
  bool uses_doh = false;
  std::string provider_host;        // "cloudflare-dns.com" / "dns.google"
  uint64_t queries = 0;             // DoH lookups observed on the wire
  std::set<std::string> domains_leaked;  // distinct names asked for
  // How many of the leaked names were sites the user visited (vs the
  // browser's own infrastructure) — requires the visited list.
  uint64_t visited_site_lookups = 0;
};

// True when `host` is (or is a subdomain of) one of the DoH provider
// hosts the paper names. Case- and trailing-dot-insensitive,
// label-boundary-aware.
bool IsDohProviderHost(std::string_view host);

// Scans native flows for DoH queries. `visited_hosts` (may be empty)
// classifies which lookups expose the browsing history itself.
DnsLeakageReport AnalyzeDnsLeakage(
    const proxy::FlowStore& native_flows,
    const std::set<std::string>& visited_hosts = {});

// Index-backed variant: the provider classification runs once per
// distinct host and the query parameters come pre-decoded.
DnsLeakageReport AnalyzeDnsLeakage(
    const FlowIndex& native_index,
    const std::set<std::string>& visited_hosts = {});

}  // namespace panoptes::analysis
