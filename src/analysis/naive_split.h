// Baseline splitter (ablation A1).
//
// Tools like a bare mitmproxy, PCAPdroid or Lumen see the same per-app
// traffic Panoptes sees but have no taint: they can only guess the
// engine/native split from the destination. This baseline encodes the
// natural heuristic — "requests to the visited sites and to well-known
// web third parties are engine traffic; everything else is native" —
// and is scored against the taint ground truth. It fails precisely on
// the paper's most interesting traffic: browsers natively calling the
// *same* ad-tech hosts websites embed (Kiwi, Edge→adjust, Opera→
// doubleclick), and UC's injected engine requests to a vendor host.
#pragma once

#include <set>
#include <string>

#include "proxy/flowstore.h"

namespace panoptes::analysis {

class FlowIndex;

class NaiveSplitter {
 public:
  // `site_hosts` are the crawled sites (first-party hosts).
  explicit NaiveSplitter(std::set<std::string> site_hosts);

  // Predicted origin for one flow, ignoring its taint.
  proxy::TrafficOrigin Predict(const proxy::Flow& flow) const;

  // The prediction is a pure function of the destination host; matching
  // is case-insensitive and label-boundary-aware (net::CanonicalHost).
  proxy::TrafficOrigin PredictHost(std::string_view raw_host) const;

  // Same prediction for a host the caller already canonicalized
  // (net::CanonicalHost) — skips the per-call canonicalization.
  proxy::TrafficOrigin PredictCanonical(const std::string& host) const;

  struct Score {
    uint64_t total = 0;
    uint64_t correct = 0;
    uint64_t native_as_engine = 0;  // hidden tracking: the bad miss
    uint64_t engine_as_native = 0;
    double accuracy = 0;
  };

  // Scores predictions against taint ground truth over both stores.
  Score Evaluate(const proxy::FlowStore& engine_flows,
                 const proxy::FlowStore& native_flows) const;

  // Index-backed variant: the prediction is per-host, so it runs once
  // per distinct host and is weighted by that host's posting size.
  Score Evaluate(const FlowIndex& engine_index,
                 const FlowIndex& native_index) const;

 private:
  void ScoreStore(const proxy::FlowStore& flows,
                  proxy::TrafficOrigin truth, Score& score) const;
  void ScoreIndex(const FlowIndex& index, proxy::TrafficOrigin truth,
                  Score& score) const;

  std::set<std::string> site_hosts_;
  std::set<std::string> site_domains_;  // registrable domains of sites
};

}  // namespace panoptes::analysis
