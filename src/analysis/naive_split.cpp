#include "analysis/naive_split.h"

#include "net/psl.h"
#include "web/thirdparty.h"

namespace panoptes::analysis {

NaiveSplitter::NaiveSplitter(std::set<std::string> site_hosts)
    : site_hosts_(std::move(site_hosts)) {
  for (const auto& host : site_hosts_) {
    site_domains_.insert(net::RegistrableDomain(host));
  }
}

proxy::TrafficOrigin NaiveSplitter::Predict(const proxy::Flow& flow) const {
  const std::string host = flow.Host();
  // Heuristic 1: requests to a crawled site (or its subdomains) are
  // engine traffic.
  if (site_hosts_.count(host) > 0 ||
      site_domains_.count(net::RegistrableDomain(host)) > 0) {
    return proxy::TrafficOrigin::kEngine;
  }
  // Heuristic 2: well-known web third parties (ads, analytics, CDNs,
  // fonts, social) are assumed to be page embeds.
  if (web::IsAdOrAnalyticsDomain(host)) return proxy::TrafficOrigin::kEngine;
  for (const auto& service : web::ThirdPartyPool()) {
    if (net::HostMatchesDomain(host, service.domain)) {
      return proxy::TrafficOrigin::kEngine;
    }
  }
  // Everything else looks vendor-ish.
  return proxy::TrafficOrigin::kNative;
}

void NaiveSplitter::ScoreStore(const proxy::FlowStore& flows,
                               proxy::TrafficOrigin truth,
                               Score& score) const {
  for (const auto& flow : flows.flows()) {
    ++score.total;
    proxy::TrafficOrigin predicted = Predict(flow);
    if (predicted == truth) {
      ++score.correct;
    } else if (truth == proxy::TrafficOrigin::kNative) {
      ++score.native_as_engine;
    } else {
      ++score.engine_as_native;
    }
  }
}

NaiveSplitter::Score NaiveSplitter::Evaluate(
    const proxy::FlowStore& engine_flows,
    const proxy::FlowStore& native_flows) const {
  Score score;
  ScoreStore(engine_flows, proxy::TrafficOrigin::kEngine, score);
  ScoreStore(native_flows, proxy::TrafficOrigin::kNative, score);
  if (score.total > 0) {
    score.accuracy =
        static_cast<double>(score.correct) / static_cast<double>(score.total);
  }
  return score;
}

}  // namespace panoptes::analysis
