#include "analysis/naive_split.h"

#include "analysis/flow_index.h"
#include "net/psl.h"
#include "web/thirdparty.h"

namespace panoptes::analysis {

NaiveSplitter::NaiveSplitter(std::set<std::string> site_hosts) {
  // Canonicalize up front so lookups are case- and trailing-dot-
  // insensitive without per-flow rework.
  for (const auto& host : site_hosts) {
    std::string canonical = net::CanonicalHost(host);
    site_domains_.insert(net::RegistrableDomain(canonical));
    site_hosts_.insert(std::move(canonical));
  }
}

proxy::TrafficOrigin NaiveSplitter::Predict(const proxy::Flow& flow) const {
  return PredictHost(flow.Host());
}

proxy::TrafficOrigin NaiveSplitter::PredictHost(
    std::string_view raw_host) const {
  return PredictCanonical(net::CanonicalHost(raw_host));
}

proxy::TrafficOrigin NaiveSplitter::PredictCanonical(
    const std::string& host) const {
  // Heuristic 1: requests to a crawled site (or its subdomains) are
  // engine traffic.
  if (site_hosts_.count(host) > 0 ||
      site_domains_.count(net::RegistrableDomain(host)) > 0) {
    return proxy::TrafficOrigin::kEngine;
  }
  // Heuristic 2: well-known web third parties (ads, analytics, CDNs,
  // fonts, social) are assumed to be page embeds.
  if (web::IsAdOrAnalyticsDomain(host)) return proxy::TrafficOrigin::kEngine;
  for (const auto& service : web::ThirdPartyPool()) {
    if (net::HostMatchesDomain(host, service.domain)) {
      return proxy::TrafficOrigin::kEngine;
    }
  }
  // Everything else looks vendor-ish.
  return proxy::TrafficOrigin::kNative;
}

void NaiveSplitter::ScoreStore(const proxy::FlowStore& flows,
                               proxy::TrafficOrigin truth,
                               Score& score) const {
  for (const auto& flow : flows.flows()) {
    ++score.total;
    proxy::TrafficOrigin predicted = PredictHost(flow.Host());
    if (predicted == truth) {
      ++score.correct;
    } else if (truth == proxy::TrafficOrigin::kNative) {
      ++score.native_as_engine;
    } else {
      ++score.engine_as_native;
    }
  }
}

void NaiveSplitter::ScoreIndex(const FlowIndex& index,
                               proxy::TrafficOrigin truth,
                               Score& score) const {
  for (size_t host_id = 0; host_id < index.hosts().size(); ++host_id) {
    const uint64_t count = index.by_host()[host_id].size();
    score.total += count;
    proxy::TrafficOrigin predicted =
        PredictCanonical(index.hosts()[host_id].canonical);
    if (predicted == truth) {
      score.correct += count;
    } else if (truth == proxy::TrafficOrigin::kNative) {
      score.native_as_engine += count;
    } else {
      score.engine_as_native += count;
    }
  }
}

NaiveSplitter::Score NaiveSplitter::Evaluate(
    const proxy::FlowStore& engine_flows,
    const proxy::FlowStore& native_flows) const {
  Score score;
  ScoreStore(engine_flows, proxy::TrafficOrigin::kEngine, score);
  ScoreStore(native_flows, proxy::TrafficOrigin::kNative, score);
  if (score.total > 0) {
    score.accuracy =
        static_cast<double>(score.correct) / static_cast<double>(score.total);
  }
  return score;
}

NaiveSplitter::Score NaiveSplitter::Evaluate(
    const FlowIndex& engine_index, const FlowIndex& native_index) const {
  Score score;
  ScoreIndex(engine_index, proxy::TrafficOrigin::kEngine, score);
  ScoreIndex(native_index, proxy::TrafficOrigin::kNative, score);
  if (score.total > 0) {
    score.accuracy =
        static_cast<double>(score.correct) / static_cast<double>(score.total);
  }
  return score;
}

}  // namespace panoptes::analysis
