#include "analysis/pii.h"

#include "analysis/flow_index.h"
#include "util/base64.h"
#include "util/json.h"
#include "util/multiscan.h"
#include "util/rng.h"
#include "util/strings.h"

namespace panoptes::analysis {

namespace {

void Mark(PiiReport& report, PiiField field, const std::string& host,
          uint64_t value_hash, std::string sample, uint64_t flow_uid) {
  report.leaked[static_cast<size_t>(field)] = true;
  // Dedup on the hash of the FULL value, not the (truncated) sample:
  // two long values sharing an 80-byte prefix are distinct sightings,
  // while the same value re-sent to the same host is not. The first
  // sighting's flow_uid sticks — uid is provenance, never identity, so
  // evidence is unchanged by the flow_uid column.
  for (const auto& existing : report.evidence) {
    if (existing.field == field && existing.host == host &&
        existing.value_hash == value_hash) {
      return;
    }
  }
  report.evidence.push_back(
      PiiEvidence{field, host, std::move(sample), value_hash, flow_uid});
}

// Live proxy::Flow objects have no store ordinal yet, so the shared
// scan implementation reports uid 0 for them; stored FlowViews carry
// their provenance uid.
uint64_t UidOf(const proxy::Flow&) { return 0; }
uint64_t UidOf(const proxy::FlowView& flow) { return flow.uid; }

// Two-decimal needle for coordinate prefix matching, derived by
// TRUNCATING the emitted four-decimal rendering — never by rounding.
// FormatDouble(35.3387, 2) rounds to "35.34", which the emitted value
// "35.3387" does not start with: a rounded needle silently misses any
// coordinate whose trailing decimals round the hundredths digit up, in
// either hemisphere (the sign is part of the string and truncation
// preserves it). Deriving the needle from the same rendering the
// emitters and FlowIndex use keeps the two byte-consistent.
std::string CoordinateNeedle(double value) {
  std::string text = util::FormatDouble(value, 4);
  size_t dot = text.find('.');
  return dot == std::string::npos ? text : text.substr(0, dot + 3);
}

}  // namespace

std::string_view PiiFieldName(PiiField field) {
  switch (field) {
    case PiiField::kDeviceType: return "Device Type";
    case PiiField::kManufacturer: return "Device Manuf.";
    case PiiField::kTimezone: return "Timezone";
    case PiiField::kResolution: return "Resolution";
    case PiiField::kLocalIp: return "Local IP";
    case PiiField::kDpi: return "DPI";
    case PiiField::kRooted: return "Rooted Status";
    case PiiField::kLocale: return "Locale";
    case PiiField::kCountry: return "Country";
    case PiiField::kLocation: return "Location";
    case PiiField::kConnectionType: return "Connection Type";
    case PiiField::kNetworkType: return "Network Type";
  }
  return "?";
}

size_t PiiReport::LeakCount() const {
  size_t count = 0;
  for (bool flag : leaked) {
    if (flag) ++count;
  }
  return count;
}

struct PiiScanner::KeyTraits {
  bool device_or_type = false;
  bool manuf_or_vendor = false;
  bool lat = false;
  bool lon = false;
  bool dpi = false;
  bool root_or_jailb = false;
  bool country_or_cc = false;
  bool net_or_conn = false;
};

PiiScanner::KeyTraits PiiScanner::TraitsOf(std::string_view key_hint) {
  // One case-folded automaton pass replaces thirteen ContainsIgnoreCase
  // sweeps. Bit positions follow the pattern list; a match sets its
  // pattern's bit and the trait reads OR the relevant bits.
  static const util::MultiScan& needles = *new util::MultiScan(
      {"dev", "type", "manuf", "vendor", "lat", "lon", "dpi", "root",
       "jailb", "country", "cc", "net", "conn"},
      /*fold_ascii_case=*/true);
  uint32_t hits = 0;
  needles.Scan(key_hint,
               [&](uint32_t pattern, size_t) { hits |= 1u << pattern; });
  KeyTraits traits;
  traits.device_or_type = (hits & 0b0000000000011u) != 0;   // dev|type
  traits.manuf_or_vendor = (hits & 0b0000000001100u) != 0;  // manuf|vendor
  traits.lat = (hits & 0b0000000010000u) != 0;
  traits.lon = (hits & 0b0000000100000u) != 0;
  traits.dpi = (hits & 0b0000001000000u) != 0;
  traits.root_or_jailb = (hits & 0b0000110000000u) != 0;    // root|jailb
  traits.country_or_cc = (hits & 0b0011000000000u) != 0;    // country|cc
  traits.net_or_conn = (hits & 0b1100000000000u) != 0;      // net|conn
  return traits;
}

PiiScanner::PiiScanner(device::DeviceProfile profile)
    : profile_(std::move(profile)),
      resolution_(std::to_string(profile_.screen_width) + "x" +
                  std::to_string(profile_.screen_height)),
      local_ip_(profile_.local_ip.ToString()),
      locale_underscore_(util::ReplaceAll(profile_.locale, "-", "_")),
      lat_prefix_(CoordinateNeedle(profile_.latitude)),
      lon_prefix_(CoordinateNeedle(profile_.longitude)),
      dpi_(std::to_string(profile_.dpi)) {}

void PiiScanner::ScanText(std::string_view key_hint, std::string_view value,
                          const std::string& host, uint64_t flow_uid,
                          PiiReport& report) const {
  ScanValue(TraitsOf(key_hint), key_hint, value, host, flow_uid, report);
}

void PiiScanner::ScanValue(const KeyTraits& traits, std::string_view key_hint,
                           std::string_view value, const std::string& host,
                           uint64_t flow_uid, PiiReport& report) const {
  // Evidence samples keep at most 80 bytes of the value, cut on a UTF-8
  // boundary so a multi-byte character straddling the limit is dropped
  // whole instead of leaving a mangled partial sequence in reports.
  auto sample = [&] {
    return std::string(key_hint) + "=" +
           std::string(util::TruncateUtf8(value, 80));
  };
  const uint64_t value_hash = util::HashString(value);

  // Value-anchored detections (distinctive values: safe without keys).
  if (value == profile_.device_type ||
      util::EqualsIgnoreCase(value, "tablet") ||
      util::EqualsIgnoreCase(value, "phone")) {
    if (traits.device_or_type || value == profile_.device_type) {
      Mark(report, PiiField::kDeviceType, host, value_hash, sample(), flow_uid);
    }
  }
  if (value == profile_.manufacturer ||
      (traits.manuf_or_vendor &&
       util::EqualsIgnoreCase(value, profile_.manufacturer))) {
    Mark(report, PiiField::kManufacturer, host, value_hash, sample(), flow_uid);
  }
  if (value == profile_.timezone) {
    Mark(report, PiiField::kTimezone, host, value_hash, sample(), flow_uid);
  }
  if (value == resolution_) {
    Mark(report, PiiField::kResolution, host, value_hash, sample(), flow_uid);
  }
  if (value == local_ip_) {
    Mark(report, PiiField::kLocalIp, host, value_hash, sample(), flow_uid);
  }
  if (value == profile_.locale || value == locale_underscore_) {
    Mark(report, PiiField::kLocale, host, value_hash, sample(), flow_uid);
  }
  if ((traits.lat && util::StartsWith(value, lat_prefix_)) ||
      (traits.lon && util::StartsWith(value, lon_prefix_))) {
    Mark(report, PiiField::kLocation, host, value_hash, sample(), flow_uid);
  }

  // Key-anchored detections (generic values: require a keyword).
  if (traits.dpi && value == dpi_) {
    Mark(report, PiiField::kDpi, host, value_hash, sample(), flow_uid);
  }
  if (traits.root_or_jailb &&
      (value == "true" || value == "false" || value == "0" ||
       value == "1")) {
    Mark(report, PiiField::kRooted, host, value_hash, sample(), flow_uid);
  }
  if (traits.country_or_cc &&
      util::EqualsIgnoreCase(value, profile_.country)) {
    Mark(report, PiiField::kCountry, host, value_hash, sample(), flow_uid);
  }
  if (util::EqualsIgnoreCase(value, "metered") ||
      util::EqualsIgnoreCase(value, "unmetered")) {
    Mark(report, PiiField::kConnectionType, host, value_hash, sample(), flow_uid);
  }
  if (traits.net_or_conn &&
      (util::EqualsIgnoreCase(value, "wifi") ||
       util::EqualsIgnoreCase(value, "cellular"))) {
    Mark(report, PiiField::kNetworkType, host, value_hash, sample(), flow_uid);
  }
}

template <typename FlowT>
void PiiScanner::ScanFlowImpl(const FlowT& flow, PiiReport& report) const {
  const std::string host(flow.Host());
  const uint64_t flow_uid = UidOf(flow);

  for (const auto& [key, value] : flow.url.QueryParams()) {
    ScanText(key, value, host, flow_uid, report);
    // Values may be Base64-wrapped (the paper decodes them too).
    if (auto decoded = util::Base64Decode(value);
        decoded && value.size() >= 8) {
      ScanText(key, *decoded, host, flow_uid, report);
    }
  }

  if (flow.request_body.empty()) return;
  auto json = util::Json::Parse(flow.request_body);
  if (!json || !json->is_object()) return;
  for (const auto& [key, value] : json->as_object()) {
    if (value.is_string()) {
      ScanText(key, value.as_string(), host, flow_uid, report);
    } else if (value.is_number()) {
      double number = value.as_number();
      // Exact integers print bare; keep enough precision for lat/lon.
      std::string text = number == static_cast<int64_t>(number)
                             ? std::to_string(static_cast<int64_t>(number))
                             : util::FormatDouble(number, 4);
      ScanText(key, text, host, flow_uid, report);
    } else if (value.is_bool()) {
      ScanText(key, value.as_bool() ? "true" : "false", host,
               flow_uid, report);
    }
  }

  // Resolution split across two JSON numbers (Opera's oleads body).
  const auto* width = json->Find("deviceScreenWidth");
  const auto* height = json->Find("deviceScreenHeight");
  if (width != nullptr && height != nullptr && width->is_number() &&
      height->is_number() &&
      static_cast<int>(width->as_number()) == profile_.screen_width &&
      static_cast<int>(height->as_number()) == profile_.screen_height) {
    std::string joined = std::to_string(profile_.screen_width) + "x" +
                         std::to_string(profile_.screen_height);
    Mark(report, PiiField::kResolution, host, util::HashString(joined),
         "deviceScreenWidth/Height=" + joined, flow_uid);
  }
}

void PiiScanner::ScanFlow(const proxy::Flow& flow, PiiReport& report) const {
  ScanFlowImpl(flow, report);
}

void PiiScanner::ScanFlow(const proxy::FlowView& flow,
                          PiiReport& report) const {
  ScanFlowImpl(flow, report);
}

PiiReport PiiScanner::Scan(const proxy::FlowStore& flows) const {
  PiiReport report;
  for (const auto& flow : flows.flows()) {
    ScanFlow(flow, report);
  }
  return report;
}

PiiReport PiiScanner::Scan(const FlowIndex& index) const {
  PiiReport report;
  const auto& params = index.params();
  // Keys are interned, so the keyword probes run once per distinct key
  // instead of once per parameter occurrence.
  std::vector<char> traits_ready(index.key_count(), 0);
  std::vector<KeyTraits> traits(index.key_count());
  for (const auto& entry : index.entries()) {
    const std::string& host = index.host(entry.host_id).raw;
    // The parameter pool replays the legacy per-flow scan order: query
    // pairs with their Base64-decoded twins interleaved, then scalar
    // JSON body members — so evidence comes out in the same order.
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      const uint32_t key_id = params[p].key_id;
      if (!traits_ready[key_id]) {
        traits[key_id] = TraitsOf(index.key(key_id));
        traits_ready[key_id] = 1;
      }
      ScanValue(traits[key_id], index.key(key_id), params[p].value, host,
                entry.uid, report);
    }

    // Resolution split across two JSON numbers (Opera's oleads body).
    const FlowIndex::Param* width = nullptr;
    const FlowIndex::Param* height = nullptr;
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      if (params[p].source != FlowIndex::ParamSource::kBodyJsonNumber) {
        continue;
      }
      const std::string& key = index.key(params[p].key_id);
      if (key == "deviceScreenWidth") width = &params[p];
      if (key == "deviceScreenHeight") height = &params[p];
    }
    if (width != nullptr && height != nullptr &&
        static_cast<int>(width->number) == profile_.screen_width &&
        static_cast<int>(height->number) == profile_.screen_height) {
      std::string joined = std::to_string(profile_.screen_width) + "x" +
                           std::to_string(profile_.screen_height);
      Mark(report, PiiField::kResolution, host, util::HashString(joined),
           "deviceScreenWidth/Height=" + joined, entry.uid);
    }
  }
  return report;
}

}  // namespace panoptes::analysis
