#include "analysis/pii.h"

#include "util/base64.h"
#include "util/json.h"
#include "util/strings.h"

namespace panoptes::analysis {

namespace {

void Mark(PiiReport& report, PiiField field, const std::string& host,
          std::string sample) {
  report.leaked[static_cast<size_t>(field)] = true;
  // Keep at most one evidence sample per (field, host) to bound memory.
  for (const auto& existing : report.evidence) {
    if (existing.field == field && existing.host == host) return;
  }
  report.evidence.push_back(PiiEvidence{field, host, std::move(sample)});
}

bool KeyHintContains(std::string_view key, std::string_view needle) {
  return util::ContainsIgnoreCase(key, needle);
}

}  // namespace

std::string_view PiiFieldName(PiiField field) {
  switch (field) {
    case PiiField::kDeviceType: return "Device Type";
    case PiiField::kManufacturer: return "Device Manuf.";
    case PiiField::kTimezone: return "Timezone";
    case PiiField::kResolution: return "Resolution";
    case PiiField::kLocalIp: return "Local IP";
    case PiiField::kDpi: return "DPI";
    case PiiField::kRooted: return "Rooted Status";
    case PiiField::kLocale: return "Locale";
    case PiiField::kCountry: return "Country";
    case PiiField::kLocation: return "Location";
    case PiiField::kConnectionType: return "Connection Type";
    case PiiField::kNetworkType: return "Network Type";
  }
  return "?";
}

size_t PiiReport::LeakCount() const {
  size_t count = 0;
  for (bool flag : leaked) {
    if (flag) ++count;
  }
  return count;
}

PiiScanner::PiiScanner(device::DeviceProfile profile)
    : profile_(std::move(profile)) {}

void PiiScanner::ScanText(std::string_view key_hint, std::string_view value,
                          const std::string& host,
                          PiiReport& report) const {
  auto sample = [&] {
    return std::string(key_hint) + "=" + std::string(value.substr(0, 80));
  };

  // Value-anchored detections (distinctive values: safe without keys).
  if (value == profile_.device_type ||
      util::EqualsIgnoreCase(value, "tablet") ||
      util::EqualsIgnoreCase(value, "phone")) {
    if (KeyHintContains(key_hint, "dev") || KeyHintContains(key_hint, "type") ||
        value == profile_.device_type) {
      Mark(report, PiiField::kDeviceType, host, sample());
    }
  }
  if (value == profile_.manufacturer ||
      (KeyHintContains(key_hint, "manuf") &&
       util::EqualsIgnoreCase(value, profile_.manufacturer)) ||
      (KeyHintContains(key_hint, "vendor") &&
       util::EqualsIgnoreCase(value, profile_.manufacturer))) {
    Mark(report, PiiField::kManufacturer, host, sample());
  }
  if (value == profile_.timezone) {
    Mark(report, PiiField::kTimezone, host, sample());
  }
  std::string resolution = std::to_string(profile_.screen_width) + "x" +
                           std::to_string(profile_.screen_height);
  if (value == resolution) {
    Mark(report, PiiField::kResolution, host, sample());
  }
  if (value == profile_.local_ip.ToString()) {
    Mark(report, PiiField::kLocalIp, host, sample());
  }
  if (value == profile_.locale ||
      value == util::ReplaceAll(profile_.locale, "-", "_")) {
    Mark(report, PiiField::kLocale, host, sample());
  }
  std::string lat_prefix = util::FormatDouble(profile_.latitude, 2);
  std::string lon_prefix = util::FormatDouble(profile_.longitude, 2);
  if ((KeyHintContains(key_hint, "lat") &&
       util::StartsWith(value, lat_prefix)) ||
      (KeyHintContains(key_hint, "lon") &&
       util::StartsWith(value, lon_prefix))) {
    Mark(report, PiiField::kLocation, host, sample());
  }

  // Key-anchored detections (generic values: require a keyword).
  if (KeyHintContains(key_hint, "dpi") &&
      value == std::to_string(profile_.dpi)) {
    Mark(report, PiiField::kDpi, host, sample());
  }
  if ((KeyHintContains(key_hint, "root") ||
       KeyHintContains(key_hint, "jailb")) &&
      (value == "true" || value == "false" || value == "0" ||
       value == "1")) {
    Mark(report, PiiField::kRooted, host, sample());
  }
  if ((KeyHintContains(key_hint, "country") ||
       KeyHintContains(key_hint, "cc")) &&
      util::EqualsIgnoreCase(value, profile_.country)) {
    Mark(report, PiiField::kCountry, host, sample());
  }
  if (util::EqualsIgnoreCase(value, "metered") ||
      util::EqualsIgnoreCase(value, "unmetered")) {
    Mark(report, PiiField::kConnectionType, host, sample());
  }
  if ((KeyHintContains(key_hint, "net") ||
       KeyHintContains(key_hint, "conn")) &&
      (util::EqualsIgnoreCase(value, "wifi") ||
       util::EqualsIgnoreCase(value, "cellular"))) {
    Mark(report, PiiField::kNetworkType, host, sample());
  }
}

void PiiScanner::ScanFlow(const proxy::Flow& flow, PiiReport& report) const {
  const std::string host = flow.Host();

  for (const auto& [key, value] : flow.url.QueryParams()) {
    ScanText(key, value, host, report);
    // Values may be Base64-wrapped (the paper decodes them too).
    if (auto decoded = util::Base64Decode(value);
        decoded && value.size() >= 8) {
      ScanText(key, *decoded, host, report);
    }
  }

  if (flow.request_body.empty()) return;
  auto json = util::Json::Parse(flow.request_body);
  if (!json || !json->is_object()) return;
  for (const auto& [key, value] : json->as_object()) {
    if (value.is_string()) {
      ScanText(key, value.as_string(), host, report);
    } else if (value.is_number()) {
      double number = value.as_number();
      // Exact integers print bare; keep enough precision for lat/lon.
      std::string text = number == static_cast<int64_t>(number)
                             ? std::to_string(static_cast<int64_t>(number))
                             : util::FormatDouble(number, 4);
      ScanText(key, text, host, report);
    } else if (value.is_bool()) {
      ScanText(key, value.as_bool() ? "true" : "false", host, report);
    }
  }

  // Resolution split across two JSON numbers (Opera's oleads body).
  const auto* width = json->Find("deviceScreenWidth");
  const auto* height = json->Find("deviceScreenHeight");
  if (width != nullptr && height != nullptr && width->is_number() &&
      height->is_number() &&
      static_cast<int>(width->as_number()) == profile_.screen_width &&
      static_cast<int>(height->as_number()) == profile_.screen_height) {
    Mark(report, PiiField::kResolution, host,
         "deviceScreenWidth/Height=" +
             std::to_string(profile_.screen_width) + "x" +
             std::to_string(profile_.screen_height));
  }
}

PiiReport PiiScanner::Scan(const proxy::FlowStore& flows) const {
  PiiReport report;
  for (const auto& flow : flows.flows()) {
    ScanFlow(flow, report);
  }
  return report;
}

}  // namespace panoptes::analysis
