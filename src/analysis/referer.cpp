#include "analysis/referer.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/flow_index.h"
#include "net/psl.h"
#include "net/url.h"

namespace panoptes::analysis {

namespace {

struct PerHost {
  uint64_t requests = 0;
  std::set<std::string> sites;
};

std::vector<RefererLeak> SortedLeaks(std::map<std::string, PerHost>& by_host) {
  std::vector<RefererLeak> leaks;
  for (auto& [host, entry] : by_host) {
    RefererLeak leak;
    leak.third_party_host = host;
    leak.requests = entry.requests;
    leak.distinct_sites = entry.sites.size();
    leaks.push_back(std::move(leak));
  }
  std::sort(leaks.begin(), leaks.end(),
            [](const RefererLeak& a, const RefererLeak& b) {
              return a.requests > b.requests;
            });
  return leaks;
}

}  // namespace

RefererReport AnalyzeRefererLeakage(const proxy::FlowStore& engine_flows) {
  RefererReport report;
  std::map<std::string, PerHost> by_host;

  for (const auto& flow : engine_flows.flows()) {
    ++report.engine_requests;
    auto referer = flow.request_headers.Get("Referer");
    if (!referer) continue;
    auto referer_url = net::Url::Parse(*referer);
    if (!referer_url) continue;
    // Third party = the destination is not same-site with the page.
    if (net::SameSite(flow.Host(), referer_url->host())) continue;
    ++report.leaking_requests;
    auto& entry = by_host[flow.Host()];
    ++entry.requests;
    entry.sites.insert(referer_url->host());
  }

  report.leaks = SortedLeaks(by_host);
  return report;
}

RefererReport AnalyzeRefererLeakage(const proxy::FlowStore& engine_flows,
                                    const FlowIndex& index) {
  if (index.flow_count() != engine_flows.size()) {
    return AnalyzeRefererLeakage(engine_flows);
  }
  RefererReport report;
  std::map<std::string, PerHost> by_host;
  // The same page URL refers every embed it loads, so both the URL
  // parse and the PSL walk repeat across flows; memoize (host, domain)
  // per distinct raw Referer value. The destination side's domain is
  // already interned in the index.
  struct RefererInfo {
    std::string host;
    std::string domain;
  };
  std::map<std::string, std::optional<RefererInfo>, std::less<>>
      parsed_referers;

  for (uint32_t flow_id = 0; flow_id < index.flow_count(); ++flow_id) {
    const FlowIndex::FlowEntry& entry = index.entries()[flow_id];
    ++report.engine_requests;
    auto referer =
        engine_flows.flow(flow_id).request_headers.Get("Referer");
    if (!referer) continue;
    auto it = parsed_referers.find(*referer);
    if (it == parsed_referers.end()) {
      std::optional<RefererInfo> info;
      if (auto referer_url = net::Url::Parse(*referer)) {
        info = RefererInfo{referer_url->host(),
                           net::RegistrableDomain(referer_url->host())};
      }
      it = parsed_referers.emplace(std::string(*referer), std::move(info))
               .first;
    }
    if (!it->second) continue;
    const FlowIndex::HostInfo& host = index.host(entry.host_id);
    if (host.domain == it->second->domain) continue;
    ++report.leaking_requests;
    auto& leak = by_host[host.raw];
    ++leak.requests;
    leak.sites.insert(it->second->host);
  }

  report.leaks = SortedLeaks(by_host);
  return report;
}

}  // namespace panoptes::analysis
