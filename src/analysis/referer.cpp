#include "analysis/referer.h"

#include <algorithm>
#include <set>

#include "net/psl.h"
#include "net/url.h"

namespace panoptes::analysis {

RefererReport AnalyzeRefererLeakage(const proxy::FlowStore& engine_flows) {
  RefererReport report;
  struct PerHost {
    uint64_t requests = 0;
    std::set<std::string> sites;
  };
  std::map<std::string, PerHost> by_host;

  for (const auto& flow : engine_flows.flows()) {
    ++report.engine_requests;
    auto referer = flow.request_headers.Get("Referer");
    if (!referer) continue;
    auto referer_url = net::Url::Parse(*referer);
    if (!referer_url) continue;
    // Third party = the destination is not same-site with the page.
    if (net::SameSite(flow.Host(), referer_url->host())) continue;
    ++report.leaking_requests;
    auto& entry = by_host[flow.Host()];
    ++entry.requests;
    entry.sites.insert(referer_url->host());
  }

  for (auto& [host, entry] : by_host) {
    RefererLeak leak;
    leak.third_party_host = host;
    leak.requests = entry.requests;
    leak.distinct_sites = entry.sites.size();
    report.leaks.push_back(std::move(leak));
  }
  std::sort(report.leaks.begin(), report.leaks.end(),
            [](const RefererLeak& a, const RefererLeak& b) {
              return a.requests > b.requests;
            });
  return report;
}

}  // namespace panoptes::analysis
