#include "analysis/referer.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "util/strings.h"

#include "analysis/flow_index.h"
#include "net/psl.h"
#include "net/url.h"

namespace panoptes::analysis {

namespace {

struct PerHost {
  uint64_t requests = 0;
  std::set<std::string> sites;
};

// Third party = destination and referring page live on different
// registrable domains (net::SameSite is exactly this equality). Both
// analysis paths — the store scan and the indexed one — route through
// this single predicate so they cannot drift on edge hosts (IP
// literals, bare PSL suffixes, trailing-dot spellings): one side
// compares domains interned by the FlowIndex, the other computes them
// fresh, but the classification itself is shared.
bool CrossSiteReferer(std::string_view dest_domain,
                      std::string_view referer_domain) {
  return dest_domain != referer_domain;
}

std::vector<RefererLeak> SortedLeaks(std::map<std::string, PerHost>& by_host) {
  std::vector<RefererLeak> leaks;
  for (auto& [host, entry] : by_host) {
    RefererLeak leak;
    leak.third_party_host = host;
    leak.requests = entry.requests;
    leak.distinct_sites = entry.sites.size();
    leaks.push_back(std::move(leak));
  }
  std::sort(leaks.begin(), leaks.end(),
            [](const RefererLeak& a, const RefererLeak& b) {
              return a.requests > b.requests;
            });
  return leaks;
}

}  // namespace

RefererReport AnalyzeRefererLeakage(const proxy::FlowStore& engine_flows) {
  RefererReport report;
  std::map<std::string, PerHost> by_host;

  for (const auto& flow : engine_flows.flows()) {
    ++report.engine_requests;
    auto referer = flow.request_headers.Get("Referer");
    if (!referer) continue;
    auto referer_url = net::Url::Parse(*referer);
    if (!referer_url) continue;
    if (!CrossSiteReferer(net::RegistrableDomain(flow.Host()),
                          net::RegistrableDomain(referer_url->host()))) {
      continue;
    }
    ++report.leaking_requests;
    auto& entry = by_host[std::string(flow.Host())];
    ++entry.requests;
    entry.sites.insert(referer_url->host());
  }

  report.leaks = SortedLeaks(by_host);
  return report;
}

RefererReport AnalyzeRefererLeakage(const proxy::FlowStore& engine_flows,
                                    const FlowIndex& index) {
  if (index.flow_count() != engine_flows.size()) {
    return AnalyzeRefererLeakage(engine_flows);
  }
  RefererReport report;
  // Accumulate per interned destination host id (a vector slot), not
  // per host string (a map node), and count distinct referring sites by
  // interned referer-host id — the site spellings themselves are only
  // needed for the distinct count.
  struct PerHostId {
    uint64_t requests = 0;
    std::set<uint32_t> site_ids;
  };
  std::vector<PerHostId> by_host_id(index.hosts().size());
  // The same page URL refers every embed it loads, so both the URL
  // parse and the PSL walk repeat across flows; memoize (host id,
  // domain) per distinct raw Referer value. The destination side's
  // domain is already interned in the index.
  struct RefererInfo {
    uint32_t host_id = 0;
    std::string domain;
  };
  std::unordered_map<std::string, std::optional<RefererInfo>,
                     util::StringHash, std::equal_to<>>
      parsed_referers;
  std::unordered_map<std::string, uint32_t, util::StringHash,
                     std::equal_to<>>
      referer_host_ids;

  // Consecutive flows are usually embeds of the same page load, so the
  // previous flow's Referer bytes short-circuit the memo lookup too.
  std::string_view last_referer;
  const std::optional<RefererInfo>* last_info = nullptr;

  for (uint32_t flow_id = 0; flow_id < index.flow_count(); ++flow_id) {
    const FlowIndex::FlowEntry& entry = index.entries()[flow_id];
    ++report.engine_requests;
    auto referer =
        engine_flows.flow(flow_id).request_headers.GetView("Referer");
    if (!referer) continue;
    if (last_info == nullptr || *referer != last_referer) {
      auto it = parsed_referers.find(*referer);
      if (it == parsed_referers.end()) {
        std::optional<RefererInfo> info;
        if (auto referer_url = net::Url::Parse(*referer)) {
          auto [host_it, inserted] = referer_host_ids.emplace(
              referer_url->host(),
              static_cast<uint32_t>(referer_host_ids.size()));
          info = RefererInfo{host_it->second,
                             net::RegistrableDomain(referer_url->host())};
        }
        it = parsed_referers.emplace(std::string(*referer), std::move(info))
                 .first;
      }
      // The arena-backed header bytes outlive the loop, and node-based
      // map values are address-stable, so both sides of the memo are
      // safe to keep across iterations.
      last_referer = *referer;
      last_info = &it->second;
    }
    if (!*last_info) continue;
    const FlowIndex::HostInfo& host = index.host(entry.host_id);
    if (!CrossSiteReferer(host.domain, (*last_info)->domain)) continue;
    ++report.leaking_requests;
    auto& leak = by_host_id[entry.host_id];
    ++leak.requests;
    leak.site_ids.insert((*last_info)->host_id);
  }

  // Assemble in host-ascending order (what the legacy map iteration
  // feeds the sort) so tie-breaking matches the store-scan path.
  std::map<std::string_view, const PerHostId*> ordered;
  for (size_t id = 0; id < by_host_id.size(); ++id) {
    if (by_host_id[id].requests > 0) {
      ordered.emplace(index.host(static_cast<uint32_t>(id)).raw,
                      &by_host_id[id]);
    }
  }
  for (const auto& [host, entry] : ordered) {
    RefererLeak leak;
    leak.third_party_host = std::string(host);
    leak.requests = entry->requests;
    leak.distinct_sites = entry->site_ids.size();
    report.leaks.push_back(std::move(leak));
  }
  std::sort(report.leaks.begin(), report.leaks.end(),
            [](const RefererLeak& a, const RefererLeak& b) {
              return a.requests > b.requests;
            });
  return report;
}

}  // namespace panoptes::analysis
