#include "analysis/flow_index.h"

#include <algorithm>
#include <utility>

#include "net/psl.h"
#include "net/url.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/base64.h"
#include "util/clock.h"
#include "util/json.h"
#include "util/strings.h"

namespace panoptes::analysis {

namespace {

struct IndexMetrics {
  obs::Counter& builds;
  obs::Counter& indexed_flows;
  obs::Counter& appends;
  obs::Counter& host_lookups;
  obs::Histogram& build_seconds;
};

IndexMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Default();
  static IndexMetrics* metrics = new IndexMetrics{
      registry.GetCounter("panoptes_index_builds_total",
                          "FlowIndex single-pass builds (captures, merges "
                          "and snapshot-restore rebuilds)"),
      registry.GetCounter("panoptes_index_indexed_flows_total",
                          "Flows folded into a FlowIndex by Build/Append"),
      registry.GetCounter("panoptes_index_appends_total",
                          "FlowIndex shard merges via Append"),
      registry.GetCounter("panoptes_index_host_lookups_total",
                          "Host-id/postings lookups served by a FlowIndex"),
      registry.GetHistogram("panoptes_index_build_seconds",
                            "Wall time of FlowIndex::Build",
                            obs::Histogram::LatencyBounds()),
  };
  return *metrics;
}

}  // namespace

uint32_t FlowIndex::InternHost(std::string_view raw) {
  if (auto it = host_ids_.find(raw); it != host_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(hosts_.size());
  hosts_.push_back(HostInfo{std::string(raw), net::CanonicalHost(raw),
                            net::RegistrableDomain(raw)});
  flows_by_host_.emplace_back();
  host_ids_.emplace(std::string(raw), id);
  return id;
}

uint32_t FlowIndex::InternKey(std::string_view key) {
  // A capture sees a handful of distinct keys; a linear scan over the
  // id-ordered vector beats hashing until the table outgrows it.
  if (keys_.size() <= 16) {
    for (uint32_t id = 0; id < keys_.size(); ++id) {
      if (keys_[id] == key) return id;
    }
  } else if (auto it = key_ids_.find(key); it != key_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(keys_.size());
  keys_.push_back(std::string(key));
  keys_lower_.push_back(util::ToLower(key));
  key_ids_.emplace(std::string(key), id);
  return id;
}

namespace {
inline uint64_t PathHash(std::string_view path) {
  return std::hash<std::string_view>{}(path);
}
}  // namespace

uint32_t FlowIndex::FindPath(std::string_view path, uint64_t hash) const {
  if (path_slots_.empty()) return UINT32_MAX;
  const size_t mask = path_slots_.size() - 1;
  const uint64_t tag = hash & 0xFFFFFFFF00000000ull;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const uint64_t slot = path_slots_[i];
    if (slot == 0) return UINT32_MAX;
    if ((slot & 0xFFFFFFFF00000000ull) == tag) {
      uint32_t id = static_cast<uint32_t>(slot) - 1;
      if (paths_[id] == path) return id;
    }
  }
}

void FlowIndex::GrowPathSlots() {
  size_t cap = path_slots_.empty() ? 64 : path_slots_.size() * 2;
  while (cap < paths_.size() * 2) cap *= 2;
  path_slots_.assign(cap, 0);
  const size_t mask = cap - 1;
  for (uint32_t id = 0; id < paths_.size(); ++id) {
    uint64_t hash = PathHash(paths_[id]);
    size_t i = hash & mask;
    while (path_slots_[i] != 0) i = (i + 1) & mask;
    path_slots_[i] =
        (hash & 0xFFFFFFFF00000000ull) | (static_cast<uint64_t>(id) + 1);
  }
}

uint32_t FlowIndex::InternPath(std::string_view path) {
  const uint64_t hash = PathHash(path);
  if (uint32_t id = FindPath(path, hash); id != UINT32_MAX) return id;
  // Keep the load factor under 1/2 (counting the entry being added).
  if ((paths_.size() + 1) * 2 > path_slots_.size()) GrowPathSlots();
  const uint32_t id = static_cast<uint32_t>(paths_.size());
  paths_.push_back(text_pool_.Copy(path));
  const size_t mask = path_slots_.size() - 1;
  size_t i = hash & mask;
  while (path_slots_[i] != 0) i = (i + 1) & mask;
  path_slots_[i] =
      (hash & 0xFFFFFFFF00000000ull) | (static_cast<uint64_t>(id) + 1);
  return id;
}

FlowIndex::FlowIndex(const FlowIndex& other)
    : hosts_(other.hosts_),
      keys_(other.keys_),
      keys_lower_(other.keys_lower_),
      params_(other.params_),
      entries_(other.entries_),
      flows_by_host_(other.flows_by_host_),
      flows_by_uid_(other.flows_by_uid_),
      flows_by_bucket_(other.flows_by_bucket_),
      request_bytes_total_(other.request_bytes_total_),
      response_bytes_total_(other.response_bytes_total_),
      host_ids_(other.host_ids_),
      key_ids_(other.key_ids_),
      path_slots_(other.path_slots_) {
  // Re-pool the text the views point at; slot ids stay valid as-is.
  paths_.reserve(other.paths_.size());
  for (std::string_view path : other.paths_) {
    paths_.push_back(text_pool_.Copy(path));
  }
  for (Param& param : params_) {
    param.value = text_pool_.Copy(param.value);
  }
}

FlowIndex& FlowIndex::operator=(const FlowIndex& other) {
  if (this != &other) {
    FlowIndex copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void FlowIndex::IndexFlow(const proxy::FlowView& flow, uint32_t host_id,
                          PostingsCache& cache) {
  FlowEntry entry;
  entry.uid = flow.uid;
  entry.host_id = host_id;
  entry.path_id = InternPath(flow.url.path());
  entry.param_begin = static_cast<uint32_t>(params_.size());
  entry.time_millis = flow.time.millis;
  entry.app_uid = flow.app_uid;
  entry.server_ip = flow.server_ip.value();
  entry.request_bytes = flow.request_bytes;
  entry.response_bytes = flow.response_bytes;
  entry.has_body = !flow.request_body.empty();
  entry.body_has_percent =
      flow.request_body.find('%') != std::string::npos;

  // Pool order replicates the legacy per-flow scans exactly: decoded
  // query pairs in appearance order, each immediately followed by its
  // Base64-decoded twin when one exists (the PII scanner and the
  // history-leak detector both decode under the same condition), then
  // the scalar JSON body members in key order (util::Json objects are
  // sorted maps). Iterating the raw pieces avoids materializing the
  // pair vector QueryParams() builds per flow: percent-decoding only
  // allocates when a piece actually contains '%' (PercentDecode is the
  // identity otherwise), and decoded text lands in the text pool.
  std::string key_scratch;
  std::string value_scratch;
  net::ForEachQueryParamRaw(
      flow.url.query(), [&](std::string_view raw_key, std::string_view raw_value) {
        std::string_view key = raw_key;
        if (raw_key.find('%') != std::string_view::npos) {
          key_scratch = util::PercentDecode(raw_key);
          key = key_scratch;
        }
        std::string_view value = raw_value;
        if (raw_value.find('%') != std::string_view::npos) {
          value_scratch = util::PercentDecode(raw_value);
          value = value_scratch;
        }
        uint32_t key_id = InternKey(key);
        // A Base64 twin needs a valid decode of a value ≥ 8 chars; the
        // length gate runs first so short values skip the decode.
        std::optional<std::string> decoded;
        if (value.size() >= 8) decoded = util::Base64Decode(value);
        params_.push_back(
            Param{key_id, ParamSource::kQuery, text_pool_.Copy(value), 0});
        if (decoded) {
          params_.push_back(Param{key_id, ParamSource::kQueryBase64,
                                  text_pool_.Copy(*decoded), 0});
        }
      });
  if (entry.has_body) {
    if (auto json = util::Json::Parse(flow.request_body);
        json && json->is_object()) {
      for (const auto& [key, value] : json->as_object()) {
        if (value.is_string()) {
          params_.push_back(Param{InternKey(key),
                                  ParamSource::kBodyJsonString,
                                  text_pool_.Copy(value.as_string()), 0});
        } else if (value.is_number()) {
          double number = value.as_number();
          // Same rendering the PII scanner applies: exact integers
          // print bare; otherwise four decimals (enough for lat/lon).
          std::string text =
              number == static_cast<double>(static_cast<int64_t>(number))
                  ? std::to_string(static_cast<int64_t>(number))
                  : util::FormatDouble(number, 4);
          params_.push_back(Param{InternKey(key),
                                  ParamSource::kBodyJsonNumber,
                                  text_pool_.Copy(text), number});
        } else if (value.is_bool()) {
          params_.push_back(Param{InternKey(key),
                                  ParamSource::kBodyJsonBool,
                                  value.as_bool() ? "true" : "false", 0});
        }
      }
    }
  }
  entry.param_end = static_cast<uint32_t>(params_.size());

  entries_.push_back(entry);
  AddPostings(static_cast<uint32_t>(entries_.size() - 1), cache);
}

void FlowIndex::AddPostings(uint32_t flow_id, PostingsCache& cache) {
  const FlowEntry& entry = entries_[flow_id];
  flows_by_host_[entry.host_id].push_back(flow_id);
  if (cache.uid_flows == nullptr || cache.uid != entry.app_uid) {
    cache.uid = entry.app_uid;
    cache.uid_flows = &flows_by_uid_[entry.app_uid];
  }
  cache.uid_flows->push_back(flow_id);
  int64_t bucket = entry.time_millis / kTimeBucketMillis * kTimeBucketMillis;
  if (cache.bucket_flows == nullptr || cache.bucket != bucket) {
    cache.bucket = bucket;
    cache.bucket_flows = &flows_by_bucket_[bucket];
  }
  cache.bucket_flows->push_back(flow_id);
  request_bytes_total_ += entry.request_bytes;
  response_bytes_total_ += entry.response_bytes;
}

FlowIndex FlowIndex::Build(const proxy::FlowStore& store) {
  obs::ScopedSpan span("index.build", "index");
  int64_t start_ns = util::SteadyNowNanos();

  FlowIndex index;
  index.entries_.reserve(store.size());
  // Pre-size the path table for the worst case (every path distinct) so
  // the build never rehashes.
  size_t slot_cap = 64;
  while (slot_cap < store.size() * 2) slot_cap *= 2;
  index.path_slots_.assign(slot_cap, 0);
  // The store already interned hosts; remap its pool ids to index ids
  // lazily (first-live-appearance order, matching what per-flow
  // interning produced) so repeated hosts skip the map lookup.
  constexpr uint32_t kUnmapped = UINT32_MAX;
  std::vector<uint32_t> host_map(store.hosts().size(), kUnmapped);
  PostingsCache cache;
  for (const auto& flow : store.flows()) {
    uint32_t& mapped = host_map[flow.host_id];
    if (mapped == kUnmapped) mapped = index.InternHost(flow.Host());
    index.IndexFlow(flow, mapped, cache);
  }

  auto& metrics = Metrics();
  metrics.builds.Inc();
  metrics.indexed_flows.Inc(index.entries_.size());
  metrics.build_seconds.Observe(
      static_cast<double>(util::SteadyNowNanos() - start_ns) * 1e-9);
  span.Arg("flows", static_cast<int64_t>(index.entries_.size()));
  span.Arg("hosts", static_cast<int64_t>(index.hosts_.size()));
  return index;
}

void FlowIndex::AddFlow(const proxy::FlowStore& store, size_t i,
                        Cursor& cursor) {
  constexpr uint32_t kUnmapped = UINT32_MAX;
  // The store's host pool only grows, so the map is extended lazily;
  // a rewind shrinks it back through RewindTo.
  if (cursor.host_map.size() < store.hosts().size()) {
    cursor.host_map.resize(store.hosts().size(), kUnmapped);
  }
  const proxy::FlowView& flow = store.flow(i);
  uint32_t& mapped = cursor.host_map[flow.host_id];
  if (mapped == kUnmapped) mapped = InternHost(flow.Host());
  IndexFlow(flow, mapped, cursor.cache);
  Metrics().indexed_flows.Inc();
}

FlowIndex::Checkpoint FlowIndex::MakeCheckpoint() const {
  return Checkpoint{hosts_.size(),   keys_.size(),
                    paths_.size(),  params_.size(),
                    entries_.size(), request_bytes_total_,
                    response_bytes_total_};
}

void FlowIndex::RewindTo(const Checkpoint& checkpoint, Cursor* cursor) {
  constexpr uint32_t kUnmapped = UINT32_MAX;
  // Pop postings newest-first: each discarded entry is by construction
  // the tail of every postings vector it appears in.
  for (size_t id = entries_.size(); id-- > checkpoint.entries;) {
    const FlowEntry& entry = entries_[id];
    flows_by_host_[entry.host_id].pop_back();
    auto uid_it = flows_by_uid_.find(entry.app_uid);
    uid_it->second.pop_back();
    if (uid_it->second.empty()) flows_by_uid_.erase(uid_it);
    int64_t bucket = entry.time_millis / kTimeBucketMillis * kTimeBucketMillis;
    auto bucket_it = flows_by_bucket_.find(bucket);
    bucket_it->second.pop_back();
    if (bucket_it->second.empty()) flows_by_bucket_.erase(bucket_it);
  }
  entries_.resize(checkpoint.entries);
  params_.resize(checkpoint.params);

  for (size_t id = checkpoint.hosts; id < hosts_.size(); ++id) {
    host_ids_.erase(host_ids_.find(hosts_[id].raw));
  }
  hosts_.resize(checkpoint.hosts);
  flows_by_host_.resize(checkpoint.hosts);
  for (size_t id = checkpoint.keys; id < keys_.size(); ++id) {
    key_ids_.erase(key_ids_.find(keys_[id]));
  }
  keys_.resize(checkpoint.keys);
  keys_lower_.resize(checkpoint.keys);
  if (paths_.size() > checkpoint.paths) {
    paths_.resize(checkpoint.paths);
    // Rebuild the probe table in place: deleting slots would leave
    // tombstones that break the empty-slot probe termination.
    std::fill(path_slots_.begin(), path_slots_.end(), 0);
    const size_t mask = path_slots_.size() - 1;
    for (uint32_t id = 0; id < paths_.size(); ++id) {
      uint64_t hash = PathHash(paths_[id]);
      size_t i = hash & mask;
      while (path_slots_[i] != 0) i = (i + 1) & mask;
      path_slots_[i] =
          (hash & 0xFFFFFFFF00000000ull) | (static_cast<uint64_t>(id) + 1);
    }
  }
  request_bytes_total_ = checkpoint.request_bytes;
  response_bytes_total_ = checkpoint.response_bytes;

  if (cursor != nullptr) {
    for (uint32_t& mapped : cursor->host_map) {
      if (mapped != kUnmapped && mapped >= checkpoint.hosts) {
        mapped = kUnmapped;
      }
    }
    cursor->cache = PostingsCache{};
  }
}

void FlowIndex::Append(const FlowIndex& other) {
  obs::ScopedSpan span("index.append", "index");
  // Self-append would walk tables it is mutating; copy first.
  if (&other == this) {
    FlowIndex copy = *this;
    Append(copy);
    return;
  }

  // Interned tables are in first-appearance order, so re-interning each
  // table in order reproduces exactly the ids a single Build over the
  // concatenated stores would assign.
  std::vector<uint32_t> host_map(other.hosts_.size());
  for (size_t i = 0; i < other.hosts_.size(); ++i) {
    host_map[i] = InternHost(other.hosts_[i].raw);
  }
  std::vector<uint32_t> key_map(other.keys_.size());
  for (size_t i = 0; i < other.keys_.size(); ++i) {
    key_map[i] = InternKey(other.keys_[i]);
  }
  std::vector<uint32_t> path_map(other.paths_.size());
  for (size_t i = 0; i < other.paths_.size(); ++i) {
    path_map[i] = InternPath(other.paths_[i]);
  }

  const uint32_t param_offset = static_cast<uint32_t>(params_.size());
  params_.reserve(params_.size() + other.params_.size());
  for (const auto& param : other.params_) {
    params_.push_back(Param{key_map[param.key_id], param.source,
                            text_pool_.Copy(param.value), param.number});
  }

  entries_.reserve(entries_.size() + other.entries_.size());
  PostingsCache cache;
  for (const auto& entry : other.entries_) {
    FlowEntry mapped = entry;
    mapped.host_id = host_map[entry.host_id];
    mapped.path_id = path_map[entry.path_id];
    mapped.param_begin += param_offset;
    mapped.param_end += param_offset;
    entries_.push_back(mapped);
    AddPostings(static_cast<uint32_t>(entries_.size() - 1), cache);
  }

  auto& metrics = Metrics();
  metrics.appends.Inc();
  metrics.indexed_flows.Inc(other.entries_.size());
  span.Arg("flows", static_cast<int64_t>(other.entries_.size()));
}

std::optional<uint32_t> FlowIndex::HostId(std::string_view raw_host) const {
  Metrics().host_lookups.Inc();
  if (auto it = host_ids_.find(raw_host); it != host_ids_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::optional<uint32_t> FlowIndex::PathId(std::string_view path) const {
  uint32_t id = FindPath(path, PathHash(path));
  if (id != UINT32_MAX) return id;
  return std::nullopt;
}

const std::vector<uint32_t>* FlowIndex::FlowsToHost(
    std::string_view raw_host) const {
  auto id = HostId(raw_host);
  return id ? &flows_by_host_[*id] : nullptr;
}

std::vector<std::string> FlowIndex::SortedHosts() const {
  std::vector<std::string> sorted;
  sorted.reserve(hosts_.size());
  for (const auto& host : hosts_) {
    sorted.push_back(host.raw);
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void FlowIndex::SerializeTo(util::BinWriter& out) const {
  obs::ScopedSpan span("index.serialize", "index");
  // Only the interned tables, the parameter pool and the flow entries
  // are encoded. Postings, lookup maps, canonical/domain host forms,
  // lowercase keys and byte totals are derived data, rebuilt on read —
  // which is what makes a deserialized index serialize byte-identical
  // to a freshly built one.
  out.U32(static_cast<uint32_t>(hosts_.size()));
  for (const auto& host : hosts_) {
    out.Str(host.raw);
  }
  out.U32(static_cast<uint32_t>(keys_.size()));
  for (const auto& key : keys_) {
    out.Str(key);
  }
  out.U32(static_cast<uint32_t>(paths_.size()));
  for (const auto& path : paths_) {
    out.Str(path);
  }
  out.U64(params_.size());
  for (const auto& param : params_) {
    out.U32(param.key_id);
    out.U8(static_cast<uint8_t>(param.source));
    out.Str(param.value);
    out.F64(param.number);
  }
  out.U64(entries_.size());
  for (const auto& entry : entries_) {
    out.U64(entry.uid);
    out.U32(entry.host_id);
    out.U32(entry.path_id);
    out.U32(entry.param_begin);
    out.U32(entry.param_end);
    out.I64(entry.time_millis);
    out.I64(entry.app_uid);
    out.U32(entry.server_ip);
    out.U64(entry.request_bytes);
    out.U64(entry.response_bytes);
    out.Bool(entry.has_body);
    out.Bool(entry.body_has_percent);
  }
}

std::unique_ptr<FlowIndex> FlowIndex::Deserialize(util::BinReader& in) {
  obs::ScopedSpan span("index.deserialize", "index");
  auto index = std::make_unique<FlowIndex>();

  uint32_t host_count = in.U32();
  for (uint32_t i = 0; i < host_count && in.ok(); ++i) {
    std::string raw = in.Str();
    // InternHost recomputes the canonical/domain forms and the lookup
    // map; tables were written in first-appearance order, so ids are
    // reassigned identically.
    if (index->InternHost(raw) != i) return nullptr;  // duplicate entry
  }
  uint32_t key_count = in.U32();
  for (uint32_t i = 0; i < key_count && in.ok(); ++i) {
    if (index->InternKey(in.Str()) != i) return nullptr;
  }
  uint32_t path_count = in.U32();
  for (uint32_t i = 0; i < path_count && in.ok(); ++i) {
    if (index->InternPath(in.Str()) != i) return nullptr;
  }

  uint64_t param_count = in.U64();
  if (!in.ok() || param_count > in.remaining()) return nullptr;
  index->params_.reserve(param_count);
  for (uint64_t i = 0; i < param_count && in.ok(); ++i) {
    Param param;
    param.key_id = in.U32();
    uint8_t source = in.U8();
    param.value = index->text_pool_.Copy(in.Str());
    param.number = in.F64();
    if (param.key_id >= index->keys_.size() ||
        source > static_cast<uint8_t>(ParamSource::kBodyJsonBool)) {
      return nullptr;
    }
    param.source = static_cast<ParamSource>(source);
    index->params_.push_back(std::move(param));
  }

  uint64_t entry_count = in.U64();
  if (!in.ok() || entry_count > in.remaining()) return nullptr;
  index->entries_.reserve(entry_count);
  PostingsCache cache;
  for (uint64_t i = 0; i < entry_count && in.ok(); ++i) {
    FlowEntry entry;
    entry.uid = in.U64();
    entry.host_id = in.U32();
    entry.path_id = in.U32();
    entry.param_begin = in.U32();
    entry.param_end = in.U32();
    entry.time_millis = in.I64();
    entry.app_uid = static_cast<int32_t>(in.I64());
    entry.server_ip = in.U32();
    entry.request_bytes = in.U64();
    entry.response_bytes = in.U64();
    entry.has_body = in.Bool();
    entry.body_has_percent = in.Bool();
    if (entry.host_id >= index->hosts_.size() ||
        entry.path_id >= index->paths_.size() ||
        entry.param_begin > entry.param_end ||
        entry.param_end > index->params_.size()) {
      return nullptr;
    }
    index->entries_.push_back(entry);
    index->AddPostings(static_cast<uint32_t>(index->entries_.size() - 1),
                       cache);
  }
  if (!in.ok()) return nullptr;

  Metrics().builds.Inc();
  span.Arg("flows", static_cast<int64_t>(index->entries_.size()));
  return index;
}

}  // namespace panoptes::analysis
