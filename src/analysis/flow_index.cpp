#include "analysis/flow_index.h"

#include <algorithm>
#include <utility>

#include "net/psl.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/base64.h"
#include "util/clock.h"
#include "util/json.h"
#include "util/strings.h"

namespace panoptes::analysis {

namespace {

struct IndexMetrics {
  obs::Counter& builds;
  obs::Counter& indexed_flows;
  obs::Counter& appends;
  obs::Counter& host_lookups;
  obs::Histogram& build_seconds;
};

IndexMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Default();
  static IndexMetrics* metrics = new IndexMetrics{
      registry.GetCounter("panoptes_index_builds_total",
                          "FlowIndex single-pass builds (captures, merges "
                          "and snapshot-restore rebuilds)"),
      registry.GetCounter("panoptes_index_indexed_flows_total",
                          "Flows folded into a FlowIndex by Build/Append"),
      registry.GetCounter("panoptes_index_appends_total",
                          "FlowIndex shard merges via Append"),
      registry.GetCounter("panoptes_index_host_lookups_total",
                          "Host-id/postings lookups served by a FlowIndex"),
      registry.GetHistogram("panoptes_index_build_seconds",
                            "Wall time of FlowIndex::Build",
                            obs::Histogram::LatencyBounds()),
  };
  return *metrics;
}

}  // namespace

uint32_t FlowIndex::InternHost(const std::string& raw) {
  if (auto it = host_ids_.find(raw); it != host_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(hosts_.size());
  hosts_.push_back(HostInfo{raw, net::CanonicalHost(raw),
                            net::RegistrableDomain(raw)});
  flows_by_host_.emplace_back();
  host_ids_.emplace(raw, id);
  return id;
}

uint32_t FlowIndex::InternKey(const std::string& key) {
  if (auto it = key_ids_.find(key); it != key_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(keys_.size());
  keys_.push_back(key);
  keys_lower_.push_back(util::ToLower(key));
  key_ids_.emplace(key, id);
  return id;
}

uint32_t FlowIndex::InternPath(const std::string& path) {
  if (auto it = path_ids_.find(path); it != path_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(paths_.size());
  paths_.push_back(path);
  path_ids_.emplace(path, id);
  return id;
}

void FlowIndex::IndexFlow(const proxy::Flow& flow) {
  FlowEntry entry;
  entry.host_id = InternHost(flow.Host());
  entry.path_id = InternPath(flow.url.path());
  entry.param_begin = static_cast<uint32_t>(params_.size());
  entry.time_millis = flow.time.millis;
  entry.app_uid = flow.app_uid;
  entry.server_ip = flow.server_ip.value();
  entry.request_bytes = flow.request_bytes;
  entry.response_bytes = flow.response_bytes;
  entry.has_body = !flow.request_body.empty();
  entry.body_has_percent =
      flow.request_body.find('%') != std::string::npos;

  // Pool order replicates the legacy per-flow scans exactly: decoded
  // query pairs in appearance order, each immediately followed by its
  // Base64-decoded twin when one exists (the PII scanner and the
  // history-leak detector both decode under the same condition), then
  // the scalar JSON body members in key order (util::Json objects are
  // sorted maps).
  for (const auto& [key, value] : flow.url.QueryParams()) {
    uint32_t key_id = InternKey(key);
    params_.push_back(Param{key_id, ParamSource::kQuery, value, 0});
    if (auto decoded = util::Base64Decode(value);
        decoded && value.size() >= 8) {
      params_.push_back(
          Param{key_id, ParamSource::kQueryBase64, *decoded, 0});
    }
  }
  if (entry.has_body) {
    if (auto json = util::Json::Parse(flow.request_body);
        json && json->is_object()) {
      for (const auto& [key, value] : json->as_object()) {
        if (value.is_string()) {
          params_.push_back(Param{InternKey(key),
                                  ParamSource::kBodyJsonString,
                                  value.as_string(), 0});
        } else if (value.is_number()) {
          double number = value.as_number();
          // Same rendering the PII scanner applies: exact integers
          // print bare; otherwise four decimals (enough for lat/lon).
          std::string text =
              number == static_cast<double>(static_cast<int64_t>(number))
                  ? std::to_string(static_cast<int64_t>(number))
                  : util::FormatDouble(number, 4);
          params_.push_back(Param{InternKey(key),
                                  ParamSource::kBodyJsonNumber,
                                  std::move(text), number});
        } else if (value.is_bool()) {
          params_.push_back(Param{InternKey(key),
                                  ParamSource::kBodyJsonBool,
                                  value.as_bool() ? "true" : "false", 0});
        }
      }
    }
  }
  entry.param_end = static_cast<uint32_t>(params_.size());

  entries_.push_back(entry);
  AddPostings(static_cast<uint32_t>(entries_.size() - 1));
}

void FlowIndex::AddPostings(uint32_t flow_id) {
  const FlowEntry& entry = entries_[flow_id];
  flows_by_host_[entry.host_id].push_back(flow_id);
  flows_by_uid_[entry.app_uid].push_back(flow_id);
  int64_t bucket = entry.time_millis / kTimeBucketMillis * kTimeBucketMillis;
  flows_by_bucket_[bucket].push_back(flow_id);
  request_bytes_total_ += entry.request_bytes;
  response_bytes_total_ += entry.response_bytes;
}

FlowIndex FlowIndex::Build(const proxy::FlowStore& store) {
  obs::ScopedSpan span("index.build", "index");
  int64_t start_ns = util::SteadyNowNanos();

  FlowIndex index;
  index.entries_.reserve(store.size());
  for (const auto& flow : store.flows()) {
    index.IndexFlow(flow);
  }

  auto& metrics = Metrics();
  metrics.builds.Inc();
  metrics.indexed_flows.Inc(index.entries_.size());
  metrics.build_seconds.Observe(
      static_cast<double>(util::SteadyNowNanos() - start_ns) * 1e-9);
  span.Arg("flows", static_cast<int64_t>(index.entries_.size()));
  span.Arg("hosts", static_cast<int64_t>(index.hosts_.size()));
  return index;
}

void FlowIndex::Append(const FlowIndex& other) {
  obs::ScopedSpan span("index.append", "index");
  // Self-append would walk tables it is mutating; copy first.
  if (&other == this) {
    FlowIndex copy = *this;
    Append(copy);
    return;
  }

  // Interned tables are in first-appearance order, so re-interning each
  // table in order reproduces exactly the ids a single Build over the
  // concatenated stores would assign.
  std::vector<uint32_t> host_map(other.hosts_.size());
  for (size_t i = 0; i < other.hosts_.size(); ++i) {
    host_map[i] = InternHost(other.hosts_[i].raw);
  }
  std::vector<uint32_t> key_map(other.keys_.size());
  for (size_t i = 0; i < other.keys_.size(); ++i) {
    key_map[i] = InternKey(other.keys_[i]);
  }
  std::vector<uint32_t> path_map(other.paths_.size());
  for (size_t i = 0; i < other.paths_.size(); ++i) {
    path_map[i] = InternPath(other.paths_[i]);
  }

  const uint32_t param_offset = static_cast<uint32_t>(params_.size());
  params_.reserve(params_.size() + other.params_.size());
  for (const auto& param : other.params_) {
    params_.push_back(
        Param{key_map[param.key_id], param.source, param.value,
              param.number});
  }

  entries_.reserve(entries_.size() + other.entries_.size());
  for (const auto& entry : other.entries_) {
    FlowEntry mapped = entry;
    mapped.host_id = host_map[entry.host_id];
    mapped.path_id = path_map[entry.path_id];
    mapped.param_begin += param_offset;
    mapped.param_end += param_offset;
    entries_.push_back(mapped);
    AddPostings(static_cast<uint32_t>(entries_.size() - 1));
  }

  auto& metrics = Metrics();
  metrics.appends.Inc();
  metrics.indexed_flows.Inc(other.entries_.size());
  span.Arg("flows", static_cast<int64_t>(other.entries_.size()));
}

std::optional<uint32_t> FlowIndex::HostId(std::string_view raw_host) const {
  Metrics().host_lookups.Inc();
  if (auto it = host_ids_.find(raw_host); it != host_ids_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::optional<uint32_t> FlowIndex::PathId(std::string_view path) const {
  if (auto it = path_ids_.find(path); it != path_ids_.end()) {
    return it->second;
  }
  return std::nullopt;
}

const std::vector<uint32_t>* FlowIndex::FlowsToHost(
    std::string_view raw_host) const {
  auto id = HostId(raw_host);
  return id ? &flows_by_host_[*id] : nullptr;
}

std::vector<std::string> FlowIndex::SortedHosts() const {
  std::vector<std::string> sorted;
  sorted.reserve(hosts_.size());
  for (const auto& host : hosts_) {
    sorted.push_back(host.raw);
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void FlowIndex::SerializeTo(util::BinWriter& out) const {
  obs::ScopedSpan span("index.serialize", "index");
  // Only the interned tables, the parameter pool and the flow entries
  // are encoded. Postings, lookup maps, canonical/domain host forms,
  // lowercase keys and byte totals are derived data, rebuilt on read —
  // which is what makes a deserialized index serialize byte-identical
  // to a freshly built one.
  out.U32(static_cast<uint32_t>(hosts_.size()));
  for (const auto& host : hosts_) {
    out.Str(host.raw);
  }
  out.U32(static_cast<uint32_t>(keys_.size()));
  for (const auto& key : keys_) {
    out.Str(key);
  }
  out.U32(static_cast<uint32_t>(paths_.size()));
  for (const auto& path : paths_) {
    out.Str(path);
  }
  out.U64(params_.size());
  for (const auto& param : params_) {
    out.U32(param.key_id);
    out.U8(static_cast<uint8_t>(param.source));
    out.Str(param.value);
    out.F64(param.number);
  }
  out.U64(entries_.size());
  for (const auto& entry : entries_) {
    out.U32(entry.host_id);
    out.U32(entry.path_id);
    out.U32(entry.param_begin);
    out.U32(entry.param_end);
    out.I64(entry.time_millis);
    out.I64(entry.app_uid);
    out.U32(entry.server_ip);
    out.U64(entry.request_bytes);
    out.U64(entry.response_bytes);
    out.Bool(entry.has_body);
    out.Bool(entry.body_has_percent);
  }
}

std::unique_ptr<FlowIndex> FlowIndex::Deserialize(util::BinReader& in) {
  obs::ScopedSpan span("index.deserialize", "index");
  auto index = std::make_unique<FlowIndex>();

  uint32_t host_count = in.U32();
  for (uint32_t i = 0; i < host_count && in.ok(); ++i) {
    std::string raw = in.Str();
    // InternHost recomputes the canonical/domain forms and the lookup
    // map; tables were written in first-appearance order, so ids are
    // reassigned identically.
    if (index->InternHost(raw) != i) return nullptr;  // duplicate entry
  }
  uint32_t key_count = in.U32();
  for (uint32_t i = 0; i < key_count && in.ok(); ++i) {
    if (index->InternKey(in.Str()) != i) return nullptr;
  }
  uint32_t path_count = in.U32();
  for (uint32_t i = 0; i < path_count && in.ok(); ++i) {
    if (index->InternPath(in.Str()) != i) return nullptr;
  }

  uint64_t param_count = in.U64();
  if (!in.ok() || param_count > in.remaining()) return nullptr;
  index->params_.reserve(param_count);
  for (uint64_t i = 0; i < param_count && in.ok(); ++i) {
    Param param;
    param.key_id = in.U32();
    uint8_t source = in.U8();
    param.value = in.Str();
    param.number = in.F64();
    if (param.key_id >= index->keys_.size() ||
        source > static_cast<uint8_t>(ParamSource::kBodyJsonBool)) {
      return nullptr;
    }
    param.source = static_cast<ParamSource>(source);
    index->params_.push_back(std::move(param));
  }

  uint64_t entry_count = in.U64();
  if (!in.ok() || entry_count > in.remaining()) return nullptr;
  index->entries_.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count && in.ok(); ++i) {
    FlowEntry entry;
    entry.host_id = in.U32();
    entry.path_id = in.U32();
    entry.param_begin = in.U32();
    entry.param_end = in.U32();
    entry.time_millis = in.I64();
    entry.app_uid = static_cast<int32_t>(in.I64());
    entry.server_ip = in.U32();
    entry.request_bytes = in.U64();
    entry.response_bytes = in.U64();
    entry.has_body = in.Bool();
    entry.body_has_percent = in.Bool();
    if (entry.host_id >= index->hosts_.size() ||
        entry.path_id >= index->paths_.size() ||
        entry.param_begin > entry.param_end ||
        entry.param_end > index->params_.size()) {
      return nullptr;
    }
    index->entries_.push_back(entry);
    index->AddPostings(static_cast<uint32_t>(index->entries_.size() - 1));
  }
  if (!in.ok()) return nullptr;

  Metrics().builds.Inc();
  span.Arg("flows", static_cast<int64_t>(index->entries_.size()));
  return index;
}

}  // namespace panoptes::analysis
