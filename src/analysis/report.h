// Plain-text table rendering for the bench binaries: every figure and
// table prints through these helpers so output stays aligned and
// greppable in bench_output.txt.
#pragma once

#include <string>
#include <vector>

#include "core/fleet.h"
#include "core/run_manifest.h"

namespace panoptes::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment and a header separator.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "0.392" / "39.2%" helpers.
std::string Ratio(double value, int decimals = 3);
std::string Percent(double fraction, int decimals = 1);

// Human-readable byte count ("1.4 MB").
std::string Bytes(uint64_t bytes);

// Aggregate table over (merged) fleet results: one row per browser ×
// campaign with request counts, the native ratio and native bytes.
// With `stats` (from FleetExecutor::Run) a telemetry footer is
// appended: wall-clock, per-worker job counts and p50/p95 job latency.
// The footer is operator display only — wall-clock data never goes
// into exported reports, so the stats-less rendering stays
// byte-deterministic.
//
// With `manifest` (from BuildRunManifest) a degradation footer is
// appended when the run was degraded: injected faults by kind, visit
// and job retries, quarantined jobs and dropped flow writes. The
// footer renders counts and simulated times only — it is as
// deterministic as the table itself. Cache-backed runs additionally get
// a result-cache footer (hits/misses/writes/invalidations).
std::string FleetSummaryTable(
    const std::vector<core::FleetJobResult>& results,
    const core::FleetRunStats* stats = nullptr,
    const core::RunManifest* manifest = nullptr);

}  // namespace panoptes::analysis
