#include "analysis/historyleak.h"

#include <algorithm>

#include "analysis/flow_index.h"
#include "util/base64.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/uuid.h"

namespace panoptes::analysis {

namespace {

bool IsHexToken(std::string_view value) {
  if (value.size() < 16) return false;
  for (char c : value) {
    bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    if (!hex) return false;
  }
  return true;
}

// Per-destination tallies shared by the store-scan and index-backed
// Scan variants.
struct Accumulator {
  uint64_t full_reports = 0;
  uint64_t host_reports = 0;
  bool persistent_identifier = false;
  std::string identifier_sample;
  std::string encoding;
  std::string sample;
  uint64_t flow_uid = 0;  // uid of the flow `sample` came from
};

std::vector<LeakFinding> Finalize(
    std::map<std::string, Accumulator>& by_destination, bool engine_store) {
  std::vector<LeakFinding> findings;
  for (auto& [destination, acc] : by_destination) {
    LeakFinding finding;
    finding.destination_host = destination;
    finding.granularity = acc.full_reports > 0 ? LeakGranularity::kFullUrl
                                               : LeakGranularity::kHostOnly;
    finding.report_count = acc.full_reports + acc.host_reports;
    finding.via_engine_injection = engine_store;
    finding.persistent_identifier = acc.persistent_identifier;
    finding.identifier_sample = acc.identifier_sample;
    finding.encoding = acc.encoding;
    finding.sample = acc.sample;
    finding.flow_uid = acc.flow_uid;
    findings.push_back(std::move(finding));
  }
  std::sort(findings.begin(), findings.end(),
            [](const LeakFinding& a, const LeakFinding& b) {
              return a.report_count > b.report_count;
            });
  return findings;
}

}  // namespace

bool LooksLikeIdentifier(std::string_view value) {
  return util::LooksLikeUuid(value) || IsHexToken(value);
}

std::string_view LeakGranularityName(LeakGranularity granularity) {
  switch (granularity) {
    case LeakGranularity::kFullUrl: return "full-url";
    case LeakGranularity::kHostOnly: return "host-only";
  }
  return "?";
}

HistoryLeakDetector::HistoryLeakDetector(std::vector<net::Url> visited) {
  visited_.reserve(visited.size());
  for (const auto& url : visited) {
    VisitedEntry entry;
    entry.full = url.Serialize();
    entry.base64 = util::Base64Encode(entry.full);
    entry.host = url.host();
    visited_hosts_.insert(entry.host);
    host_min_index_.emplace(entry.host,
                            static_cast<uint32_t>(visited_.size()));
    visited_.push_back(std::move(entry));
  }
  std::vector<std::string> patterns;
  patterns.reserve(visited_.size() * 2);
  for (const auto& entry : visited_) {
    patterns.push_back(entry.full);
    patterns.push_back(entry.base64);
  }
  needle_scan_ = std::make_unique<util::MultiScan>(std::move(patterns));
}

HistoryLeakDetector::Hit HistoryLeakDetector::BestHit(
    const std::vector<std::string_view>& candidates, bool& matched) const {
  // The legacy loop ran visited-major over (visited, candidate) pairs,
  // preferred plain over Base64 within a pair, stopped at the first
  // full-URL hit, and fell back to the first hit of any kind. One
  // automaton pass per candidate finds the same winners: pattern ids
  // are already ordered (visited, kind), so the per-candidate minimum
  // dominates that candidate's hits, and packing (visited, candidate,
  // kind) into one integer makes the global reduction a min().
  constexpr uint64_t kNone = UINT64_MAX;
  uint64_t best_full = kNone;  // (visited << 33) | (candidate << 1) | kind
  uint64_t best_host = kNone;  // (visited << 32) | candidate
  for (size_t j = 0; j < candidates.size(); ++j) {
    const std::string_view text = candidates[j];
    uint32_t min_pat = UINT32_MAX;
    needle_scan_->Scan(text, [&](uint32_t pat, size_t) {
      min_pat = std::min(min_pat, pat);
    });
    if (min_pat != UINT32_MAX) {
      uint64_t key = (static_cast<uint64_t>(min_pat >> 1) << 33) |
                     (static_cast<uint64_t>(j) << 1) |
                     static_cast<uint64_t>(min_pat & 1);
      best_full = std::min(best_full, key);
    } else if (best_full == kNone) {
      // Hostname only: the bare host as a discrete value. Irrelevant
      // once any full-URL hit exists.
      if (auto it = host_min_index_.find(text);
          it != host_min_index_.end()) {
        uint64_t key =
            (static_cast<uint64_t>(it->second) << 32) | j;
        best_host = std::min(best_host, key);
      }
    }
  }

  Hit hit;
  if (best_full != kNone) {
    matched = true;
    hit.full_url = true;
    hit.encoding = (best_full & 1) != 0 ? "base64" : "plain";
    size_t j = static_cast<size_t>((best_full >> 1) & 0xFFFFFFFFu);
    hit.sample = std::string(candidates[j].substr(0, 96));
  } else if (best_host != kNone) {
    matched = true;
    hit.full_url = false;
    hit.encoding = "plain";
    size_t j = static_cast<size_t>(best_host & 0xFFFFFFFFu);
    hit.sample = std::string(candidates[j].substr(0, 96));
  }
  return hit;
}

std::vector<LeakFinding> HistoryLeakDetector::Scan(
    const proxy::FlowStore& flows, bool engine_store) const {
  std::map<std::string, Accumulator> by_destination;

  for (const auto& flow : flows.flows()) {
    const std::string destination(flow.Host());
    // Flows to a visited site itself are the visit, not a leak; the
    // interesting case is a *different* destination learning the URL.
    if (visited_hosts_.count(destination) > 0) continue;

    // Candidate texts: decoded query parameter values (each followed by
    // its Base64-decoded twin when one exists), then the raw body, then
    // its percent-decoded form (form posts may carry the URL
    // percent-encoded). `owned` keeps the query strings alive for the
    // duration of the automaton pass.
    std::vector<std::string> owned;
    for (auto& [key, value] : flow.url.QueryParams()) {
      (void)key;
      auto decoded = util::Base64Decode(value);
      const bool twin = decoded.has_value() && value.size() >= 8;
      owned.push_back(std::move(value));
      if (twin) owned.push_back(std::move(*decoded));
    }
    std::string decoded_body;
    bool has_decoded_body = false;
    if (!flow.request_body.empty() &&
        flow.request_body.find('%') != std::string_view::npos) {
      decoded_body = util::PercentDecode(flow.request_body);
      has_decoded_body = true;
    }
    std::vector<std::string_view> candidates(owned.begin(), owned.end());
    if (!flow.request_body.empty()) {
      candidates.push_back(flow.request_body);
      if (has_decoded_body) candidates.push_back(decoded_body);
    }

    bool flow_matched = false;
    Hit best_hit = BestHit(candidates, flow_matched);
    if (!flow_matched) continue;

    auto& acc = by_destination[destination];
    if (best_hit.full_url) {
      ++acc.full_reports;
    } else {
      ++acc.host_reports;
    }
    if (acc.sample.empty() || best_hit.full_url) {
      acc.encoding = best_hit.encoding;
      acc.sample = best_hit.sample;
      acc.flow_uid = flow.uid;
    }

    // Does a stable identifier accompany the report?
    for (const auto& [key, value] : flow.url.QueryParams()) {
      (void)key;
      if (LooksLikeIdentifier(value)) {
        acc.persistent_identifier = true;
        acc.identifier_sample = value;
      }
    }
    if (!flow.request_body.empty()) {
      if (auto json = util::Json::Parse(flow.request_body);
          json && json->is_object()) {
        for (const auto& [key, value] : json->as_object()) {
          (void)key;
          if (value.is_string() && LooksLikeIdentifier(value.as_string())) {
            acc.persistent_identifier = true;
            acc.identifier_sample = value.as_string();
          }
        }
      }
    }
  }

  return Finalize(by_destination, engine_store);
}

std::vector<LeakFinding> HistoryLeakDetector::Scan(
    const proxy::FlowStore& flows, const FlowIndex& index,
    bool engine_store) const {
  if (index.flow_count() != flows.size()) {
    return Scan(flows, engine_store);
  }
  // Accumulate per interned host id (vector slot, not map node); the
  // by-destination map Finalize expects is assembled once at the end.
  std::vector<Accumulator> by_host_id(index.hosts().size());

  // Visited-site membership decided once per distinct host.
  std::vector<bool> is_visited;
  is_visited.reserve(index.hosts().size());
  for (const auto& host : index.hosts()) {
    is_visited.push_back(visited_hosts_.count(host.raw) > 0);
  }

  const auto& params = index.params();
  std::string decoded_body;
  std::vector<std::string_view> candidates;
  for (uint32_t flow_id = 0; flow_id < index.flow_count(); ++flow_id) {
    const FlowIndex::FlowEntry& entry = index.entries()[flow_id];
    if (is_visited[entry.host_id]) continue;

    // Same candidate texts, same order as the store scan: decoded query
    // values with Base64-decoded twins interleaved (the pool keeps that
    // order), then the raw body, then its percent-decoded form.
    const std::string_view body = flows.flow(flow_id).request_body;
    candidates.clear();
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      if (params[p].source == FlowIndex::ParamSource::kQuery ||
          params[p].source == FlowIndex::ParamSource::kQueryBase64) {
        candidates.push_back(params[p].value);
      }
    }
    if (entry.has_body) {
      candidates.push_back(body);
      if (entry.body_has_percent) {
        decoded_body = util::PercentDecode(body);
        candidates.push_back(decoded_body);
      }
    }

    bool flow_matched = false;
    Hit best_hit = BestHit(candidates, flow_matched);
    if (!flow_matched) continue;

    auto& acc = by_host_id[entry.host_id];
    if (best_hit.full_url) {
      ++acc.full_reports;
    } else {
      ++acc.host_reports;
    }
    if (acc.sample.empty() || best_hit.full_url) {
      acc.encoding = best_hit.encoding;
      acc.sample = best_hit.sample;
      acc.flow_uid = entry.uid;
    }

    // Does a stable identifier accompany the report? Query values
    // first, then JSON body strings — the store scan's order.
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      if (params[p].source == FlowIndex::ParamSource::kQuery &&
          LooksLikeIdentifier(params[p].value)) {
        acc.persistent_identifier = true;
        acc.identifier_sample = params[p].value;
      }
    }
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      if (params[p].source == FlowIndex::ParamSource::kBodyJsonString &&
          LooksLikeIdentifier(params[p].value)) {
        acc.persistent_identifier = true;
        acc.identifier_sample = params[p].value;
      }
    }
  }

  std::map<std::string, Accumulator> by_destination;
  for (size_t id = 0; id < by_host_id.size(); ++id) {
    Accumulator& acc = by_host_id[id];
    if (acc.full_reports + acc.host_reports > 0) {
      by_destination.emplace(index.host(static_cast<uint32_t>(id)).raw,
                             std::move(acc));
    }
  }
  return Finalize(by_destination, engine_store);
}

}  // namespace panoptes::analysis
