#include "analysis/historyleak.h"

#include <algorithm>

#include "analysis/flow_index.h"
#include "util/base64.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/uuid.h"

namespace panoptes::analysis {

namespace {

bool IsHexToken(std::string_view value) {
  if (value.size() < 16) return false;
  for (char c : value) {
    bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    if (!hex) return false;
  }
  return true;
}

// Per-destination tallies shared by the store-scan and index-backed
// Scan variants.
struct Accumulator {
  uint64_t full_reports = 0;
  uint64_t host_reports = 0;
  bool persistent_identifier = false;
  std::string identifier_sample;
  std::string encoding;
  std::string sample;
};

std::vector<LeakFinding> Finalize(
    std::map<std::string, Accumulator>& by_destination, bool engine_store) {
  std::vector<LeakFinding> findings;
  for (auto& [destination, acc] : by_destination) {
    LeakFinding finding;
    finding.destination_host = destination;
    finding.granularity = acc.full_reports > 0 ? LeakGranularity::kFullUrl
                                               : LeakGranularity::kHostOnly;
    finding.report_count = acc.full_reports + acc.host_reports;
    finding.via_engine_injection = engine_store;
    finding.persistent_identifier = acc.persistent_identifier;
    finding.identifier_sample = acc.identifier_sample;
    finding.encoding = acc.encoding;
    finding.sample = acc.sample;
    findings.push_back(std::move(finding));
  }
  std::sort(findings.begin(), findings.end(),
            [](const LeakFinding& a, const LeakFinding& b) {
              return a.report_count > b.report_count;
            });
  return findings;
}

}  // namespace

bool LooksLikeIdentifier(std::string_view value) {
  return util::LooksLikeUuid(value) || IsHexToken(value);
}

std::string_view LeakGranularityName(LeakGranularity granularity) {
  switch (granularity) {
    case LeakGranularity::kFullUrl: return "full-url";
    case LeakGranularity::kHostOnly: return "host-only";
  }
  return "?";
}

HistoryLeakDetector::HistoryLeakDetector(std::vector<net::Url> visited) {
  visited_.reserve(visited.size());
  for (const auto& url : visited) {
    VisitedEntry entry;
    entry.full = url.Serialize();
    entry.base64 = util::Base64Encode(entry.full);
    entry.host = url.host();
    visited_hosts_.insert(entry.host);
    visited_.push_back(std::move(entry));
  }
}

bool HistoryLeakDetector::MatchText(std::string_view text,
                                    const VisitedEntry& visited,
                                    Hit& hit) const {
  // Full URL, plain (query-parameter decoding already removed any
  // percent-encoding).
  if (util::Contains(text, visited.full)) {
    hit.full_url = true;
    hit.encoding = "plain";
    hit.sample = std::string(text.substr(0, 96));
    return true;
  }
  // Full URL, Base64.
  if (util::Contains(text, visited.base64)) {
    hit.full_url = true;
    hit.encoding = "base64";
    hit.sample = std::string(text.substr(0, 96));
    return true;
  }
  // Hostname only: the bare host as a discrete value.
  if (text == visited.host) {
    hit.full_url = false;
    hit.encoding = "plain";
    hit.sample = std::string(text.substr(0, 96));
    return true;
  }
  return false;
}

std::vector<LeakFinding> HistoryLeakDetector::Scan(
    const proxy::FlowStore& flows, bool engine_store) const {
  std::map<std::string, Accumulator> by_destination;

  for (const auto& flow : flows.flows()) {
    const std::string destination = flow.Host();
    // Flows to a visited site itself are the visit, not a leak; the
    // interesting case is a *different* destination learning the URL.
    if (visited_hosts_.count(destination) > 0) continue;

    // Candidate texts: decoded query parameter values and the body.
    std::vector<std::pair<std::string, std::string>> candidates;
    for (const auto& [key, value] : flow.url.QueryParams()) {
      candidates.emplace_back(key, value);
      if (auto decoded = util::Base64Decode(value);
          decoded && value.size() >= 8) {
        candidates.emplace_back(key, *decoded);
      }
    }
    if (!flow.request_body.empty()) {
      candidates.emplace_back("<body>", flow.request_body);
      // Bodies may carry the URL percent-encoded (form posts).
      if (flow.request_body.find('%') != std::string::npos) {
        candidates.emplace_back("<body-decoded>",
                                util::PercentDecode(flow.request_body));
      }
    }

    bool flow_matched = false;
    Hit best_hit;
    for (const auto& visited : visited_) {
      for (const auto& [key, text] : candidates) {
        (void)key;
        Hit hit;
        if (MatchText(text, visited, hit)) {
          flow_matched = true;
          if (hit.full_url || best_hit.sample.empty()) best_hit = hit;
          if (hit.full_url) break;
        }
      }
      if (flow_matched && best_hit.full_url) break;
    }
    if (!flow_matched) continue;

    auto& acc = by_destination[destination];
    if (best_hit.full_url) {
      ++acc.full_reports;
    } else {
      ++acc.host_reports;
    }
    if (acc.sample.empty() || best_hit.full_url) {
      acc.encoding = best_hit.encoding;
      acc.sample = best_hit.sample;
    }

    // Does a stable identifier accompany the report?
    for (const auto& [key, value] : flow.url.QueryParams()) {
      (void)key;
      if (LooksLikeIdentifier(value)) {
        acc.persistent_identifier = true;
        acc.identifier_sample = value;
      }
    }
    if (!flow.request_body.empty()) {
      if (auto json = util::Json::Parse(flow.request_body);
          json && json->is_object()) {
        for (const auto& [key, value] : json->as_object()) {
          (void)key;
          if (value.is_string() && LooksLikeIdentifier(value.as_string())) {
            acc.persistent_identifier = true;
            acc.identifier_sample = value.as_string();
          }
        }
      }
    }
  }

  return Finalize(by_destination, engine_store);
}

std::vector<LeakFinding> HistoryLeakDetector::Scan(
    const proxy::FlowStore& flows, const FlowIndex& index,
    bool engine_store) const {
  if (index.flow_count() != flows.size()) {
    return Scan(flows, engine_store);
  }
  std::map<std::string, Accumulator> by_destination;

  // Visited-site membership decided once per distinct host.
  std::vector<bool> is_visited;
  is_visited.reserve(index.hosts().size());
  for (const auto& host : index.hosts()) {
    is_visited.push_back(visited_hosts_.count(host.raw) > 0);
  }

  const auto& params = index.params();
  std::string decoded_body;
  std::vector<std::string_view> candidates;
  for (uint32_t flow_id = 0; flow_id < index.flow_count(); ++flow_id) {
    const FlowIndex::FlowEntry& entry = index.entries()[flow_id];
    if (is_visited[entry.host_id]) continue;

    // Same candidate texts, same order as the store scan: decoded query
    // values with Base64-decoded twins interleaved (the pool keeps that
    // order), then the raw body, then its percent-decoded form.
    const std::string& body = flows.flow(flow_id).request_body;
    candidates.clear();
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      if (params[p].source == FlowIndex::ParamSource::kQuery ||
          params[p].source == FlowIndex::ParamSource::kQueryBase64) {
        candidates.push_back(params[p].value);
      }
    }
    if (entry.has_body) {
      candidates.push_back(body);
      if (entry.body_has_percent) {
        decoded_body = util::PercentDecode(body);
        candidates.push_back(decoded_body);
      }
    }

    bool flow_matched = false;
    Hit best_hit;
    for (const auto& visited : visited_) {
      for (std::string_view text : candidates) {
        Hit hit;
        if (MatchText(text, visited, hit)) {
          flow_matched = true;
          if (hit.full_url || best_hit.sample.empty()) best_hit = hit;
          if (hit.full_url) break;
        }
      }
      if (flow_matched && best_hit.full_url) break;
    }
    if (!flow_matched) continue;

    auto& acc = by_destination[index.host(entry.host_id).raw];
    if (best_hit.full_url) {
      ++acc.full_reports;
    } else {
      ++acc.host_reports;
    }
    if (acc.sample.empty() || best_hit.full_url) {
      acc.encoding = best_hit.encoding;
      acc.sample = best_hit.sample;
    }

    // Does a stable identifier accompany the report? Query values
    // first, then JSON body strings — the store scan's order.
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      if (params[p].source == FlowIndex::ParamSource::kQuery &&
          LooksLikeIdentifier(params[p].value)) {
        acc.persistent_identifier = true;
        acc.identifier_sample = params[p].value;
      }
    }
    for (uint32_t p = entry.param_begin; p < entry.param_end; ++p) {
      if (params[p].source == FlowIndex::ParamSource::kBodyJsonString &&
          LooksLikeIdentifier(params[p].value)) {
        acc.persistent_identifier = true;
        acc.identifier_sample = params[p].value;
      }
    }
  }

  return Finalize(by_destination, engine_store);
}

}  // namespace panoptes::analysis
