#include "analysis/geoip.h"

#include <algorithm>
#include <set>

#include "analysis/flow_index.h"

namespace panoptes::analysis {

GeoIpDb::GeoIpDb(std::vector<net::GeoRange> ranges)
    : ranges_(std::move(ranges)) {}

void GeoIpDb::AddRange(net::GeoRange range) {
  ranges_.push_back(std::move(range));
}

std::optional<GeoInfo> GeoIpDb::Lookup(net::IpAddress ip) const {
  // Longest-prefix match, like a real routing/geo table.
  const net::GeoRange* best = nullptr;
  for (const auto& range : ranges_) {
    if (range.cidr.Contains(ip)) {
      if (best == nullptr ||
          range.cidr.prefix_len() > best->cidr.prefix_len()) {
        best = &range;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return GeoInfo{best->country_code, best->country_name, best->eu_member};
}

std::vector<CountryShare> CountriesContacted(const proxy::FlowStore& flows,
                                             const GeoIpDb& db) {
  std::map<std::string, CountryShare> by_code;
  std::map<std::string, std::set<std::string>> hosts_by_code;
  for (const auto& flow : flows.flows()) {
    auto info = db.Lookup(flow.server_ip);
    std::string code = info ? info->country_code : "??";
    auto& share = by_code[code];
    if (share.flows == 0) {
      share.country_code = code;
      share.country_name = info ? info->country_name : "unknown";
      share.eu_member = info && info->eu_member;
    }
    ++share.flows;
    hosts_by_code[code].insert(std::string(flow.Host()));
  }
  std::vector<CountryShare> out;
  for (auto& [code, share] : by_code) {
    for (const auto& host : hosts_by_code[code]) {
      share.hosts.push_back(host);
    }
    out.push_back(std::move(share));
  }
  std::sort(out.begin(), out.end(),
            [](const CountryShare& a, const CountryShare& b) {
              return a.flows > b.flows;
            });
  return out;
}

std::vector<CountryShare> CountriesContacted(const FlowIndex& index,
                                             const GeoIpDb& db) {
  std::map<std::string, CountryShare> by_code;
  std::map<std::string, std::set<std::string>> hosts_by_code;
  // The geo db lookup is a linear range scan; flows reuse a small set
  // of server IPs, so resolve each distinct IP once.
  std::map<uint32_t, std::optional<GeoInfo>> by_ip;
  for (const auto& entry : index.entries()) {
    auto [it, inserted] = by_ip.try_emplace(entry.server_ip);
    if (inserted) it->second = db.Lookup(net::IpAddress(entry.server_ip));
    const auto& info = it->second;
    std::string code = info ? info->country_code : "??";
    auto& share = by_code[code];
    if (share.flows == 0) {
      share.country_code = code;
      share.country_name = info ? info->country_name : "unknown";
      share.eu_member = info && info->eu_member;
    }
    ++share.flows;
    hosts_by_code[code].insert(index.host(entry.host_id).raw);
  }
  std::vector<CountryShare> out;
  for (auto& [code, share] : by_code) {
    for (const auto& host : hosts_by_code[code]) {
      share.hosts.push_back(host);
    }
    out.push_back(std::move(share));
  }
  std::sort(out.begin(), out.end(),
            [](const CountryShare& a, const CountryShare& b) {
              return a.flows > b.flows;
            });
  return out;
}

namespace {

TransferFinding MakeTransferFinding(const std::string& host,
                                    const std::optional<GeoInfo>& info) {
  TransferFinding finding;
  finding.host = host;
  finding.country_code = info ? info->country_code : "??";
  finding.country_name = info ? info->country_name : "unknown";
  finding.outside_eu = !info || !info->eu_member;
  return finding;
}

}  // namespace

std::vector<TransferFinding> ClassifyTransfers(
    const proxy::FlowStore& flows, const std::vector<std::string>& hosts,
    const GeoIpDb& db) {
  std::vector<TransferFinding> out;
  for (const auto& host : hosts) {
    auto matching = flows.ToHost(host);
    if (matching.empty()) continue;
    auto info = db.Lookup(matching.front().server_ip);
    out.push_back(MakeTransferFinding(host, info));
  }
  return out;
}

std::vector<TransferFinding> ClassifyTransfers(
    const FlowIndex& index, const std::vector<std::string>& hosts,
    const GeoIpDb& db) {
  std::vector<TransferFinding> out;
  for (const auto& host : hosts) {
    const auto* postings = index.FlowsToHost(host);
    if (postings == nullptr || postings->empty()) continue;
    auto info = db.Lookup(
        net::IpAddress(index.entries()[postings->front()].server_ip));
    out.push_back(MakeTransferFinding(host, info));
  }
  return out;
}

}  // namespace panoptes::analysis
