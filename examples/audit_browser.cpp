// Deep audit of one browser: everything Panoptes can say about it from
// a single crawl — request/volume stats, distinct native destinations
// with classification and hosting country, history-leak findings, PII
// matrix row, and DoH behaviour.
//
//   ./build/examples/audit_browser [browser-name] [site-count]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/flow_index.h"
#include "analysis/geoip.h"
#include "analysis/historyleak.h"
#include "analysis/hostslist.h"
#include "analysis/pii.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "browser/profiles.h"
#include "core/campaign.h"
#include "core/framework.h"

using namespace panoptes;

int main(int argc, char** argv) {
  std::string browser_name = argc > 1 ? argv[1] : "Edge";
  int site_count = argc > 2 ? std::atoi(argv[2]) : 60;
  const auto* spec = browser::FindSpec(browser_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown browser: %s\n", browser_name.c_str());
    return 1;
  }

  core::FrameworkOptions options;
  options.catalog.popular_count = site_count / 2;
  options.catalog.sensitive_count = site_count - site_count / 2;
  core::Framework framework(options);

  std::vector<const web::Site*> sites;
  for (const auto& site : framework.catalog().sites()) sites.push_back(&site);

  std::printf("=== Panoptes audit: %s %s ===\n", spec->name.c_str(),
              spec->version.c_str());
  std::printf("package: %s | engine: %s | instrumented via %s\n",
              spec->package.c_str(), spec->engine.c_str(),
              spec->instrumentation == browser::Instrumentation::kCdp
                  ? "CDP"
                  : "Frida WebView hook");
  std::printf("crawling %zu sites...\n\n", sites.size());

  auto result = core::RunCrawl(framework, *spec, sites);
  auto requests = analysis::ComputeRequestStats(result);
  auto volume = analysis::ComputeVolumeStats(result);

  std::printf("--- traffic split ---\n");
  std::printf("engine: %llu requests (%s out)\n",
              (unsigned long long)requests.engine_requests,
              analysis::Bytes(volume.engine_bytes).c_str());
  std::printf("native: %llu requests (%s out) — ratio %s, +%s bytes\n\n",
              (unsigned long long)requests.native_requests,
              analysis::Bytes(volume.native_bytes).c_str(),
              analysis::Ratio(requests.native_ratio).c_str(),
              analysis::Percent(volume.native_extra_fraction).c_str());

  // Destinations.
  auto hosts_list = analysis::HostsList::Default();
  analysis::GeoIpDb geo(framework.geo_plan().ranges());
  std::printf("--- native destinations ---\n");
  analysis::TextTable table({"Host", "Requests", "Class", "Country"});
  const analysis::FlowIndex& native_index = *result.native_index;
  for (const auto& host : native_index.SortedHosts()) {
    const auto* flow_ids = native_index.FlowsToHost(host);
    auto info = geo.Lookup(net::IpAddress(
        native_index.entries()[flow_ids->front()].server_ip));
    table.AddRow({host, std::to_string(flow_ids->size()),
                  hosts_list.IsAdRelated(host) ? "AD/ANALYTICS" : "vendor/infra",
                  info ? info->country_name +
                             (info->eu_member ? " (EU)" : " (non-EU)")
                       : "?"});
  }
  std::printf("%s\n", table.Render().c_str());

  // History leaks.
  std::vector<net::Url> visited;
  for (const auto* site : sites) visited.push_back(site->landing_url);
  analysis::HistoryLeakDetector detector(visited);
  std::printf("--- browsing-history leaks ---\n");
  bool any = false;
  struct TaintedStore {
    const proxy::FlowStore* store;
    const analysis::FlowIndex* index;
    bool engine;
  };
  for (const auto& side : {
           TaintedStore{result.native_flows.get(),
                        result.native_index.get(), false},
           TaintedStore{result.engine_flows.get(),
                        result.engine_index.get(), true},
       }) {
    for (const auto& leak :
         detector.Scan(*side.store, *side.index, side.engine)) {
      any = true;
      std::printf("%s receives the %s (%s%s%s) — %llu reports\n",
                  leak.destination_host.c_str(),
                  leak.granularity == analysis::LeakGranularity::kFullUrl
                      ? "FULL URL"
                      : "hostname",
                  leak.encoding.c_str(),
                  leak.persistent_identifier ? ", with persistent id" : "",
                  leak.via_engine_injection ? ", via JS injection" : "",
                  (unsigned long long)leak.report_count);
    }
  }
  if (!any) std::printf("none detected\n");

  // PII row.
  analysis::PiiScanner scanner(framework.device().profile());
  auto pii = scanner.Scan(native_index);
  std::printf("\n--- Table 2 row ---\n");
  for (size_t i = 0; i < analysis::kPiiFieldCount; ++i) {
    std::printf("%-16s %s\n",
                std::string(analysis::PiiFieldName(
                                static_cast<analysis::PiiField>(i)))
                    .c_str(),
                pii.leaked[i] ? "YES" : "no");
  }

  std::printf("\nDNS: %s\n",
              spec->doh == browser::DohProvider::kNone
                  ? "local stub resolver"
                  : (spec->doh == browser::DohProvider::kCloudflare
                         ? "DoH via cloudflare-dns.com"
                         : "DoH via dns.google"));
  std::printf("pin-lost handshakes: %llu (lower-bound caveat)\n",
              (unsigned long long)result.stack_stats.pin_failures);
  return 0;
}
