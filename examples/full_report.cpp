// Audits every browser and writes a single Markdown report — the
// deliverable a DPA / privacy team would actually read.
//
//   ./build/examples/full_report [--sites N] [--jobs N] [--out REPORT.md]
//
// --jobs sets the analyzer battery's worker count per browser; any
// value produces a byte-identical report (pinned by the Determinism
// suite), so it is purely a wall-clock knob.
#include <cstdio>
#include <fstream>

#include "analysis/audit.h"
#include "browser/profiles.h"
#include "util/args.h"

using namespace panoptes;

int main(int argc, char** argv) {
  auto args = util::Args::Parse(argc, argv);
  int site_count = static_cast<int>(args.IntOptionOr("sites", 60));
  int jobs = static_cast<int>(args.IntOptionOr("jobs", 1));

  core::FrameworkOptions options;
  options.catalog.popular_count = site_count / 2;
  options.catalog.sensitive_count = site_count - site_count / 2;
  core::Framework framework(options);

  std::vector<const web::Site*> sites;
  for (const auto& site : framework.catalog().sites()) sites.push_back(&site);
  auto hosts_list = analysis::HostsList::Default();
  analysis::GeoIpDb geo(framework.geo_plan().ranges());

  std::vector<analysis::BrowserAuditReport> reports;
  for (const auto& spec : browser::AllBrowserSpecs()) {
    std::fprintf(stderr, "auditing %s...\n", spec.name.c_str());
    reports.push_back(analysis::AuditBrowser(framework, spec, sites,
                                             hosts_list, geo, jobs));
  }

  std::string markdown = analysis::RenderAuditMarkdown(reports);
  std::string out_path = args.OptionOr("out", "");
  if (out_path.empty()) {
    std::printf("%s", markdown.c_str());
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << markdown;
    std::printf("wrote %s (%zu browsers, %zu sites each)\n",
                out_path.c_str(), reports.size(), sites.size());
  }
  return 0;
}
