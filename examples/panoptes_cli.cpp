// panoptes_cli — the command-line face of the framework, roughly what
// the paper's tooling exposes to an operator.
//
//   panoptes_cli browsers
//   panoptes_cli crawl --browser Yandex --sites 50 [--incognito]
//                      [--har flows.har] [--csv flows.csv]
//   panoptes_cli idle  --browser Opera --minutes 10
//   panoptes_cli fleet --jobs 4 [--sites 100] [--shards 4]
//                      [--browsers Yandex,Opera] [--incognito] [--idle]
//                      [--population N] [--population-seed S]
//                      [--chaos-profile flaky|dns-storm|...|file.json]
//                      [--max-retries N] [--manifest-out manifest.json]
//                      [--cache-dir DIR] [--resume] [--kill-after-jobs N]
//                      [--memory-budget BYTES] [--spill-dir DIR] [--shed]
//                      [--watchdog-seconds N] [--window SECONDS]
//                      [--smuggling F] [--bounce-fraction F]
//                      [--decoration-fraction F] [--plain-http-fraction F]
//                      [--max-bounce-hops N]
//                      [--smuggling-json s.json] [--smuggling-csv s.csv]
//                      [--json report.json] [--csv report.csv]
//                      [--metrics-out metrics.prom] [--trace-out trace.json]
//                      [--journal-out journal.jsonl]
//   panoptes_cli validate-telemetry [--metrics f.prom] [--trace f.json]
//                      [--manifest manifest.json] [--journal f.jsonl]
//   panoptes_cli explain --finding 0x<flow_id> --cache-dir DIR
//                      [--journal journal.jsonl]
//   panoptes_cli baseline-check --baseline base.json --current cur.json
//   panoptes_cli sitelist [--out 1k.txt]
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "analysis/export.h"
#include "analysis/flow_index.h"
#include "analysis/historyleak.h"
#include "core/snapshot.h"
#include "obs/baseline.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "analysis/manifest.h"
#include "analysis/timeline.h"
#include "browser/profiles.h"
#include "chaos/profile.h"
#include "core/campaign.h"
#include "core/fleet.h"
#include "core/framework.h"
#include "core/result_cache.h"
#include "core/run_manifest.h"
#include "device/population.h"
#include "proxy/har.h"
#include "util/args.h"
#include "util/strings.h"
#include "web/sitelist.h"

using namespace panoptes;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: panoptes_cli <command>\n"
               "  browsers                      list the instrumented browsers\n"
               "  crawl --browser <name> [--sites N] [--incognito]\n"
               "        [--har FILE] [--csv FILE]\n"
               "  idle  --browser <name> [--minutes M]\n"
               "  fleet [--jobs N] [--sites N] [--shards K] [--seed S]\n"
               "        [--browsers A,B,..] [--incognito] [--idle]\n"
               "        [--population N] [--population-seed S]\n"
               "        [--chaos-profile NAME|FILE] [--max-retries N]\n"
               "        [--cache-dir DIR] [--resume] [--kill-after-jobs N]\n"
               "        [--memory-budget BYTES] [--spill-dir DIR] [--shed]\n"
               "        [--watchdog-seconds N] [--window SECONDS]\n"
               "        [--smuggling F] [--bounce-fraction F]\n"
               "        [--decoration-fraction F] [--plain-http-fraction F]\n"
               "        [--max-bounce-hops N]\n"
               "        [--smuggling-json FILE] [--smuggling-csv FILE]\n"
               "        [--manifest-out FILE]\n"
               "        [--json FILE] [--csv FILE]\n"
               "        [--metrics-out FILE] [--trace-out FILE]\n"
               "        [--journal-out FILE]\n"
               "  validate-telemetry [--metrics FILE] [--trace FILE]\n"
               "        [--manifest FILE] [--journal FILE]\n"
               "  explain --finding 0xID --cache-dir DIR [--journal FILE]\n"
               "  baseline-check --baseline FILE --current FILE\n"
               "  sitelist [--out FILE]         dump the crawl dataset\n"
               "  run-manifest <FILE> [--out FILE]   execute a JSON campaign\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

core::Framework MakeFramework(int sites) {
  core::FrameworkOptions options;
  options.catalog.popular_count = sites / 2;
  options.catalog.sensitive_count = sites - sites / 2;
  return core::Framework(options);
}

// Resolves --chaos-profile: a preset name ("flaky", "dns-storm", ...)
// or a path to a FaultProfile JSON file.
std::optional<chaos::FaultProfile> LoadChaosProfile(const std::string& arg) {
  if (auto named = chaos::FaultProfile::Named(arg)) return named;
  std::ifstream in(arg, std::ios::binary);
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return chaos::FaultProfile::FromJson(text);
}

int CmdBrowsers() {
  analysis::TextTable table({"Browser", "Version", "Package", "DNS",
                             "Incognito", "Instrumentation"});
  for (const auto& spec : browser::AllBrowserSpecs()) {
    table.AddRow(
        {spec.name, spec.version, spec.package,
         spec.doh == browser::DohProvider::kNone ? "stub" : "DoH",
         spec.has_incognito ? "yes" : "no",
         spec.instrumentation == browser::Instrumentation::kCdp
             ? "CDP"
             : "Frida"});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}

int CmdCrawl(const util::Args& args) {
  std::string browser_name = args.OptionOr("browser", "Yandex");
  const auto* spec = browser::FindSpec(browser_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown browser: %s\n", browser_name.c_str());
    return 1;
  }
  int site_count = static_cast<int>(args.IntOptionOr("sites", 40));
  auto framework = MakeFramework(site_count);

  std::vector<const web::Site*> sites;
  for (const auto& site : framework.catalog().sites()) sites.push_back(&site);

  core::CrawlOptions crawl_options;
  crawl_options.incognito = args.HasFlag("incognito");
  auto result = core::RunCrawl(framework, *spec, sites, crawl_options);

  auto requests = analysis::ComputeRequestStats(result);
  auto volume = analysis::ComputeVolumeStats(result);
  std::printf("%s: %llu engine / %llu native requests (ratio %s, native "
              "bytes +%s)%s\n",
              spec->name.c_str(),
              (unsigned long long)requests.engine_requests,
              (unsigned long long)requests.native_requests,
              analysis::Ratio(requests.native_ratio).c_str(),
              analysis::Percent(volume.native_extra_fraction).c_str(),
              crawl_options.incognito ? " [incognito]" : "");

  std::vector<net::Url> visited;
  for (const auto* site : sites) visited.push_back(site->landing_url);
  analysis::HistoryLeakDetector detector(visited);
  struct TaintedStore {
    const proxy::FlowStore* store;
    const analysis::FlowIndex* index;
    bool engine;
  };
  for (const auto& side : {
           TaintedStore{result.native_flows.get(),
                        result.native_index.get(), false},
           TaintedStore{result.engine_flows.get(),
                        result.engine_index.get(), true},
       }) {
    for (const auto& leak :
         detector.Scan(*side.store, *side.index, side.engine)) {
      std::printf("leak -> %s [%s%s%s]\n", leak.destination_host.c_str(),
                  std::string(LeakGranularityName(leak.granularity)).c_str(),
                  leak.persistent_identifier ? ", persistent id" : "",
                  leak.via_engine_injection ? ", JS injection" : "");
    }
  }

  if (auto har_path = args.Option("har")) {
    // Both stores concatenated into one capture, like a proxy dump.
    proxy::FlowStore combined;
    for (const auto& flow : result.engine_flows->flows()) {
      combined.Add(flow.Materialize());
    }
    for (const auto& flow : result.native_flows->flows()) {
      combined.Add(flow.Materialize());
    }
    if (!WriteFile(*har_path, proxy::ExportHar(combined, "panoptes_cli"))) {
      std::fprintf(stderr, "cannot write %s\n", har_path->c_str());
      return 1;
    }
    std::printf("wrote %zu flows to %s\n", combined.size(),
                har_path->c_str());
  }
  if (auto csv_path = args.Option("csv")) {
    proxy::FlowStore combined;
    for (const auto& flow : result.engine_flows->flows()) {
      combined.Add(flow.Materialize());
    }
    for (const auto& flow : result.native_flows->flows()) {
      combined.Add(flow.Materialize());
    }
    if (!WriteFile(*csv_path, analysis::FlowStoreCsv(combined))) {
      std::fprintf(stderr, "cannot write %s\n", csv_path->c_str());
      return 1;
    }
    std::printf("wrote %zu flows to %s\n", combined.size(),
                csv_path->c_str());
  }
  return 0;
}

int CmdIdle(const util::Args& args) {
  std::string browser_name = args.OptionOr("browser", "Opera");
  const auto* spec = browser::FindSpec(browser_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown browser: %s\n", browser_name.c_str());
    return 1;
  }
  auto framework = MakeFramework(4);
  core::IdleOptions idle_options;
  idle_options.duration =
      util::Duration::Minutes(args.IntOptionOr("minutes", 10));
  auto result = core::RunIdle(framework, *spec, idle_options);

  auto timeline =
      analysis::AnalyzeTimeline(result.cumulative_by_bucket, result.bucket);
  std::printf("%s idle for %llds: %llu native requests, shape %s "
              "(first-minute share %s)\n",
              spec->name.c_str(),
              (long long)(idle_options.duration.millis / 1000),
              (unsigned long long)timeline.total,
              std::string(analysis::TimelineShapeName(timeline.shape)).c_str(),
              analysis::Percent(timeline.first_minute_share).c_str());
  for (const auto& host : result.native_index->SortedHosts()) {
    std::printf("  %-30s %s\n", host.c_str(),
                analysis::Percent(result.ShareToHost(host)).c_str());
  }
  return 0;
}

// Whole-dataset campaign across many browsers, sharded over worker
// threads. Same seed ⇒ same report, whatever --jobs says; see
// "Parallel execution" in EXPERIMENTS.md.
int CmdFleet(const util::Args& args) {
  std::vector<browser::BrowserSpec> browsers;
  if (auto names = args.Option("browsers")) {
    for (const auto& name : util::SplitNonEmpty(*names, ',')) {
      const auto* spec = browser::FindSpec(name);
      if (spec == nullptr) {
        std::fprintf(stderr, "unknown browser: %s\n", name.c_str());
        return 1;
      }
      browsers.push_back(*spec);
    }
  } else {
    browsers = browser::AllBrowserSpecs();
  }

  std::vector<core::CampaignKind> kinds = {core::CampaignKind::kCrawl};
  if (args.HasFlag("incognito")) {
    kinds.push_back(core::CampaignKind::kIncognitoCrawl);
  }
  if (args.HasFlag("idle")) kinds.push_back(core::CampaignKind::kIdle);

  int site_count = static_cast<int>(args.IntOptionOr("sites", 40));
  core::FleetOptions options;
  options.jobs =
      std::max<int>(1, static_cast<int>(args.IntOptionOr("jobs", 1)));
  options.base_seed =
      static_cast<uint64_t>(args.IntOptionOr("seed", 20231024));
  options.framework.catalog.popular_count = site_count / 2;
  options.framework.catalog.sensitive_count = site_count - site_count / 2;

  // UID-smuggling scenario knobs (web/sitegen.h): --smuggling F turns
  // on both first-party bounce chains and link decoration for a
  // fraction F of generated sites; the fine-grained flags set one knob
  // each. All default to 0, which reproduces the legacy catalog byte
  // for byte.
  auto fraction_option = [&](const char* name) -> double {
    auto text = args.Option(name);
    return text ? std::strtod(text->c_str(), nullptr) : 0.0;
  };
  web::SiteGenOptions& sitegen = options.framework.catalog.sitegen;
  if (double f = fraction_option("smuggling"); f > 0) {
    sitegen.bounce_fraction = f;
    sitegen.decoration_fraction = f;
  }
  if (double f = fraction_option("bounce-fraction"); f > 0) {
    sitegen.bounce_fraction = f;
  }
  if (double f = fraction_option("decoration-fraction"); f > 0) {
    sitegen.decoration_fraction = f;
  }
  if (double f = fraction_option("plain-http-fraction"); f > 0) {
    sitegen.plain_http_fraction = f;
  }
  sitegen.max_bounce_hops = static_cast<int>(
      args.IntOptionOr("max-bounce-hops", sitegen.max_bounce_hops));

  // Chaos fabric + self-healing: an enabled profile injects seeded
  // faults; --max-retries arms both the per-visit retry loop and the
  // job-level retry/quarantine budget.
  if (auto profile_arg = args.Option("chaos-profile")) {
    auto profile = LoadChaosProfile(*profile_arg);
    if (!profile) {
      std::fprintf(stderr,
                   "unknown chaos profile: %s (presets:", profile_arg->c_str());
      for (const auto& name : chaos::FaultProfile::NamedProfiles()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 1;
    }
    options.framework.chaos = *profile;
  }
  int max_retries = static_cast<int>(args.IntOptionOr("max-retries", 0));
  options.max_job_retries = max_retries;
  core::CrawlOptions crawl_options;
  crawl_options.retry.max_retries = max_retries;

  // Streaming ingest: per-job live-store memory budget, spill directory
  // for sealed segments (safe to share across jobs — segment filenames
  // embed the per-job provenance tag), deterministic shedding, and a
  // simulated-time watchdog. Defaults reproduce the unbounded batch
  // capture bit for bit.
  core::StreamOptions stream;
  stream.memory_budget_bytes =
      static_cast<uint64_t>(args.IntOptionOr("memory-budget", 0));
  stream.spill_dir = args.OptionOr("spill-dir", "");
  stream.shed_when_full = args.HasFlag("shed");
  options.watchdog_deadline =
      util::Duration::Seconds(args.IntOptionOr("watchdog-seconds", 0));
  crawl_options.stream = stream;
  core::IdleOptions idle_options;
  idle_options.stream = stream;

  // Rolling-window mode (--window): one continuous streaming campaign
  // per browser, reported straight from the live incremental index —
  // no fleet executor, no terminal batch pass, memory bounded by the
  // budget however long the window runs.
  if (int64_t window_seconds = args.IntOptionOr("window", 0);
      window_seconds > 0) {
    core::WindowOptions window_options;
    window_options.window = util::Duration::Seconds(window_seconds);
    window_options.stream = stream;
    window_options.watchdog_deadline = options.watchdog_deadline;
    obs::MetricsRegistry::Default().Reset();
    auto window_journal_path = args.Option("journal-out");
    obs::Journal run_journal;
    std::string combined = "{\"results\":[";
    bool first = true;
    for (const auto& spec : browsers) {
      core::FrameworkOptions fw = options.framework;
      fw.catalog_seed = options.base_seed;
      fw.seed = core::DeriveJobSeed(options.base_seed, spec.name,
                                    core::CampaignKind::kIdle, 0);
      obs::Journal job_journal;
      if (window_journal_path) fw.journal = &job_journal;
      core::Framework framework(fw);
      auto result = core::RunWindow(framework, spec, window_options);
      std::printf(
          "%s window %llds: %llu native requests, %llu shed, %llu spill "
          "segments, peak live %llu bytes%s\n",
          spec.name.c_str(), static_cast<long long>(window_seconds),
          static_cast<unsigned long long>(result.native_flows),
          static_cast<unsigned long long>(result.ingest.flows_shed),
          static_cast<unsigned long long>(result.ingest.spill_segments),
          static_cast<unsigned long long>(result.ingest.peak_live_bytes),
          result.watchdog_cancelled ? " [watchdog cancelled]" : "");
      if (!first) combined += ",";
      first = false;
      combined += analysis::WindowReportJson(spec.name, result.native_index,
                                             fw.device_profile);
      if (window_journal_path) run_journal.Append(job_journal);
    }
    combined += "]}";
    if (auto json_path = args.Option("json")) {
      if (!WriteFile(*json_path, combined)) {
        std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
        return 1;
      }
      std::printf("wrote %s\n", json_path->c_str());
    }
    if (auto metrics_path = args.Option("metrics-out")) {
      if (!WriteFile(*metrics_path,
                     obs::MetricsRegistry::Default().PrometheusText())) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path->c_str());
        return 1;
      }
      std::printf("wrote %s\n", metrics_path->c_str());
    }
    if (window_journal_path) {
      if (!WriteFile(*window_journal_path, run_journal.Jsonl())) {
        std::fprintf(stderr, "cannot write %s\n",
                     window_journal_path->c_str());
        return 1;
      }
      std::printf("wrote %zu journal events to %s\n", run_journal.size(),
                  window_journal_path->c_str());
    }
    return 0;
  }

  // Result cache: --cache-dir persists each completed job as a
  // fingerprinted snapshot and replays matching snapshots on the next
  // run; --resume additionally re-executes cached quarantines.
  // --kill-after-jobs N hard-kills the process after N completed jobs
  // (the crash half of the fleet_resume smoke test); _Exit skips
  // cleanup on purpose — a crash wouldn't run it either.
  options.cache_dir = args.OptionOr("cache-dir", "");
  options.resume = args.HasFlag("resume");
  // Observatory journal: strictly additive, so enabling it never moves
  // a report byte — but it is off unless asked for (per-job buffers are
  // not free).
  auto journal_path = args.Option("journal-out");
  options.journal = journal_path.has_value();
  int64_t kill_after = args.IntOptionOr("kill-after-jobs", 0);
  if (kill_after > 0) {
    static std::atomic<int64_t> completed{0};
    options.on_job_complete = [kill_after](const core::FleetJobResult&) {
      if (completed.fetch_add(1) + 1 >= kill_after) std::_Exit(17);
    };
  }

  int shards = static_cast<int>(args.IntOptionOr("shards", options.jobs));
  // Device-population campaign: --population N synthesizes N device
  // cohorts deterministically from --population-seed and crosses them
  // with the browser x kind x shard plan. No --population keeps the
  // single-device (paper testbed) plan, byte for byte.
  std::vector<device::DeviceCohort> cohorts;
  if (int64_t population = args.IntOptionOr("population", 0);
      population > 0) {
    device::PopulationOptions pop_options;
    pop_options.size = static_cast<int>(population);
    pop_options.seed = static_cast<uint64_t>(
        args.IntOptionOr("population-seed", 20231024));
    cohorts = device::PopulationGenerator::Generate(pop_options);
  }
  auto jobs = core::FleetExecutor::PlanCampaign(
      browsers, cohorts, kinds, shards, crawl_options, idle_options);
  if (cohorts.empty()) {
    std::fprintf(stderr, "fleet: %zu jobs (%zu browsers x %zu kinds), %d "
                 "workers\n",
                 jobs.size(), browsers.size(), kinds.size(), options.jobs);
  } else {
    std::fprintf(stderr, "fleet: %zu jobs (%zu browsers x %zu cohorts x "
                 "%zu kinds), %d workers\n",
                 jobs.size(), browsers.size(), cohorts.size(), kinds.size(),
                 options.jobs);
  }

  // Telemetry: fresh counters per invocation; span tracing only when a
  // trace file is requested (per-thread buffering is not free).
  auto metrics_path = args.Option("metrics-out");
  auto trace_path = args.Option("trace-out");
  obs::MetricsRegistry::Default().Reset();
  if (trace_path) {
    obs::Tracer::Default().Clear();
    obs::Tracer::Default().SetEnabled(true);
  }

  core::FleetExecutor executor(options);
  core::FleetRunStats stats;
  auto results = executor.Run(jobs, &stats);
  // The manifest is built from the un-merged results (plan order), so
  // quarantined shards are accounted before salvage drops them.
  core::CacheStats cache_stats;
  if (executor.cache() != nullptr) cache_stats = executor.cache()->Stats();
  core::RunManifest manifest = core::BuildRunManifest(
      options, results, executor.cache() != nullptr ? &cache_stats : nullptr);
  // The journal merges from the un-merged results (plan order) —
  // MergeShards drops per-job identity.
  obs::Journal run_journal;
  if (journal_path) {
    core::FleetExecutor::MergeJournal(results, &run_journal);
  }
  auto merged = core::FleetExecutor::MergeShards(std::move(results));
  std::printf("%s",
              analysis::FleetSummaryTable(merged, &stats, &manifest).c_str());

  if (auto manifest_path = args.Option("manifest-out")) {
    if (!WriteFile(*manifest_path, analysis::RunManifestJson(manifest))) {
      std::fprintf(stderr, "cannot write %s\n", manifest_path->c_str());
      return 1;
    }
    std::printf("wrote %s\n", manifest_path->c_str());
  }
  if (auto json_path = args.Option("json")) {
    if (!WriteFile(*json_path, analysis::FleetReportJson(merged))) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path->c_str());
  }
  if (auto csv_path = args.Option("csv")) {
    if (!WriteFile(*csv_path, analysis::FleetSummaryCsv(merged))) {
      std::fprintf(stderr, "cannot write %s\n", csv_path->c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path->c_str());
  }
  if (auto smuggling_json = args.Option("smuggling-json")) {
    if (!WriteFile(*smuggling_json,
                   analysis::UidSmugglingReportJson(merged))) {
      std::fprintf(stderr, "cannot write %s\n", smuggling_json->c_str());
      return 1;
    }
    std::printf("wrote %s\n", smuggling_json->c_str());
  }
  if (auto smuggling_csv = args.Option("smuggling-csv")) {
    if (!WriteFile(*smuggling_csv, analysis::UidSmugglingCsv(merged))) {
      std::fprintf(stderr, "cannot write %s\n", smuggling_csv->c_str());
      return 1;
    }
    std::printf("wrote %s\n", smuggling_csv->c_str());
  }

  // Telemetry files go last so report-rendering spans are included.
  if (metrics_path) {
    if (!WriteFile(*metrics_path,
                   obs::MetricsRegistry::Default().PrometheusText())) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path->c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path->c_str());
  }
  if (trace_path) {
    obs::Tracer::Default().SetEnabled(false);
    if (!WriteFile(*trace_path, obs::Tracer::Default().ChromeTraceJson())) {
      std::fprintf(stderr, "cannot write %s\n", trace_path->c_str());
      return 1;
    }
    std::printf("wrote %zu spans to %s\n",
                obs::Tracer::Default().EventCount(), trace_path->c_str());
  }
  if (journal_path) {
    if (!WriteFile(*journal_path, run_journal.Jsonl())) {
      std::fprintf(stderr, "cannot write %s\n", journal_path->c_str());
      return 1;
    }
    std::printf("wrote %zu journal events to %s\n", run_journal.size(),
                journal_path->c_str());
  }
  return 0;
}

// Validates telemetry files produced by `fleet`: the metrics file must
// be well-formed Prometheus text exposition with at least one sample,
// the trace file valid Chrome trace_event JSON with at least one event.
// Exit 0 only when every given file checks out (the ctest smoke test
// gates on this).
int CmdValidateTelemetry(const util::Args& args) {
  bool checked_any = false;

  if (auto metrics_path = args.Option("metrics")) {
    std::ifstream in(*metrics_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", metrics_path->c_str());
      return 1;
    }
    std::string line;
    size_t samples = 0;
    size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      // "name[{labels}] value": a metric name, optional label set, one
      // numeric value.
      size_t name_end = line.find_first_of(" {");
      if (name_end == 0 || name_end == std::string::npos) {
        std::fprintf(stderr, "%s:%zu: malformed sample: %s\n",
                     metrics_path->c_str(), line_no, line.c_str());
        return 1;
      }
      for (char c : line.substr(0, name_end)) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':')) {
          std::fprintf(stderr, "%s:%zu: bad metric name: %s\n",
                       metrics_path->c_str(), line_no, line.c_str());
          return 1;
        }
      }
      size_t value_at = name_end;
      if (line[name_end] == '{') {
        size_t close = line.find('}', name_end);
        if (close == std::string::npos) {
          std::fprintf(stderr, "%s:%zu: unterminated labels: %s\n",
                       metrics_path->c_str(), line_no, line.c_str());
          return 1;
        }
        value_at = close + 1;
      }
      try {
        size_t used = 0;
        std::stod(line.substr(value_at), &used);
        if (line.find_first_not_of(" \t", value_at + used) !=
            std::string::npos) {
          throw std::invalid_argument("trailing garbage");
        }
      } catch (const std::exception&) {
        std::fprintf(stderr, "%s:%zu: bad sample value: %s\n",
                     metrics_path->c_str(), line_no, line.c_str());
        return 1;
      }
      ++samples;
    }
    if (samples == 0) {
      std::fprintf(stderr, "%s: no samples\n", metrics_path->c_str());
      return 1;
    }
    std::printf("metrics ok: %zu samples in %s\n", samples,
                metrics_path->c_str());
    checked_any = true;
  }

  if (auto trace_path = args.Option("trace")) {
    std::ifstream in(*trace_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", trace_path->c_str());
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto parsed = util::Json::Parse(text);
    if (!parsed || !parsed->is_object()) {
      std::fprintf(stderr, "%s: not a JSON object\n", trace_path->c_str());
      return 1;
    }
    const util::Json* events = parsed->Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "%s: missing traceEvents array\n",
                   trace_path->c_str());
      return 1;
    }
    if (events->as_array().empty()) {
      std::fprintf(stderr, "%s: no trace events\n", trace_path->c_str());
      return 1;
    }
    for (const auto& event : events->as_array()) {
      for (const char* key : {"name", "ph", "ts", "dur", "pid", "tid"}) {
        if (event.Find(key) == nullptr) {
          std::fprintf(stderr, "%s: event missing \"%s\"\n",
                       trace_path->c_str(), key);
          return 1;
        }
      }
    }
    std::printf("trace ok: %zu events in %s\n", events->as_array().size(),
                trace_path->c_str());
    checked_any = true;
  }

  if (auto manifest_path = args.Option("manifest")) {
    std::ifstream in(*manifest_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", manifest_path->c_str());
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto parsed = util::Json::Parse(text);
    if (!parsed || !parsed->is_object()) {
      std::fprintf(stderr, "%s: not a JSON object\n", manifest_path->c_str());
      return 1;
    }
    for (const char* key :
         {"base_seed", "chaos_profile", "max_job_retries", "degraded",
          "totals", "cache", "jobs", "degraded_visits"}) {
      if (parsed->Find(key) == nullptr) {
        std::fprintf(stderr, "%s: missing \"%s\"\n", manifest_path->c_str(),
                     key);
        return 1;
      }
    }
    const util::Json* jobs = parsed->Find("jobs");
    if (!jobs->is_array()) {
      std::fprintf(stderr, "%s: \"jobs\" is not an array\n",
                   manifest_path->c_str());
      return 1;
    }
    for (const auto& job : jobs->as_array()) {
      for (const char* key : {"browser", "kind", "shard", "seed", "attempts",
                              "quarantined", "faults_injected"}) {
        if (job.Find(key) == nullptr) {
          std::fprintf(stderr, "%s: job entry missing \"%s\"\n",
                       manifest_path->c_str(), key);
          return 1;
        }
      }
    }
    const util::Json* totals = parsed->Find("totals");
    if (!totals->is_object() ||
        totals->Find("faults_injected") == nullptr ||
        totals->Find("quarantined_jobs") == nullptr) {
      std::fprintf(stderr, "%s: malformed \"totals\"\n",
                   manifest_path->c_str());
      return 1;
    }
    std::printf("manifest ok: %zu jobs, %s, in %s\n",
                jobs->as_array().size(),
                parsed->Find("degraded")->as_bool() ? "degraded"
                                                    : "not degraded",
                manifest_path->c_str());
    checked_any = true;
  }

  if (auto journal_path = args.Option("journal")) {
    std::ifstream in(*journal_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", journal_path->c_str());
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    // Fail-soft (obs::ValidateJournalJsonl): a journal cut off
    // mid-write — crash, full disk — still yields its valid prefix.
    // Exit 3 distinguishes "truncated but salvageable" from hard
    // corruption (1), so callers can keep the recorded events.
    obs::JournalValidation validation = obs::ValidateJournalJsonl(text);
    if (validation.truncated) {
      std::printf("journal truncated: %zu/%zu events valid in %s (%s)\n",
                  validation.valid_events, validation.declared_events,
                  journal_path->c_str(), validation.error.c_str());
      return 3;
    }
    if (!validation.ok) {
      std::fprintf(stderr, "%s: %s\n", journal_path->c_str(),
                   validation.error.c_str());
      return 1;
    }
    // A zero-event journal (header only) is valid: a zero-job run still
    // writes a well-formed file.
    std::printf("journal ok: %zu events in %s\n", validation.valid_events,
                journal_path->c_str());
    checked_any = true;
  }

  if (!checked_any) {
    std::fprintf(stderr,
                 "validate-telemetry needs --metrics, --trace, --manifest "
                 "and/or --journal\n");
    return 2;
  }
  return 0;
}

// Walks a finding's provenance chain: given a flow_id (as printed in
// FleetReportJson findings and in the journal), locates the exact flow
// in the run's result-cache snapshots and reconstructs job → visit →
// flow, optionally quoting the journal lines that mention it. This is
// the observatory's payoff: every exported finding is a citable claim.
int CmdExplain(const util::Args& args) {
  auto finding = args.Option("finding");
  std::string cache_dir = args.OptionOr("cache-dir", "");
  if (!finding || cache_dir.empty()) {
    std::fprintf(stderr,
                 "explain needs --finding 0x<flow_id> and --cache-dir\n");
    return 2;
  }
  std::string hex = *finding;
  if (hex.rfind("0x", 0) == 0 || hex.rfind("0X", 0) == 0) {
    hex = hex.substr(2);
  }
  char* end = nullptr;
  uint64_t uid = std::strtoull(hex.c_str(), &end, 16);
  if (end == hex.c_str() || *end != '\0' || uid == 0) {
    std::fprintf(stderr, "bad flow id: %s\n", finding->c_str());
    return 2;
  }

  // Snapshot walk in sorted filename order (deterministic output).
  std::vector<std::filesystem::path> snaps;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(cache_dir, ec)) {
    if (entry.path().extension() == ".snap") snaps.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "cannot read %s\n", cache_dir.c_str());
    return 1;
  }
  std::sort(snaps.begin(), snaps.end());

  const uint32_t tag = static_cast<uint32_t>(uid >> 32);
  const uint32_t ordinal = static_cast<uint32_t>(uid);
  for (const auto& path : snaps) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    core::FleetJobResult result;
    if (!core::snapshot::ReadAny(bytes, &result)) continue;

    struct Side {
      const proxy::FlowStore* store;
      const char* role;
    };
    std::vector<Side> sides;
    if (result.crawl.has_value()) {
      sides.push_back({result.crawl->engine_flows.get(), "engine"});
      sides.push_back({result.crawl->native_flows.get(), "native"});
    }
    if (result.idle.has_value()) {
      sides.push_back({result.idle->native_flows.get(), "native"});
    }
    for (const Side& side : sides) {
      if (side.store == nullptr) continue;
      for (const auto& flow : side.store->flows()) {
        if (flow.uid != uid) continue;

        std::printf("finding %s\n", obs::FlowIdHex(uid).c_str());
        std::printf(
            "  job: browser=%s kind=%s shard=%d/%d seed=0x%016llx "
            "attempts=%d%s\n",
            result.job.spec.name.c_str(),
            std::string(core::CampaignKindName(result.job.kind)).c_str(),
            result.job.shard, result.job.shard_count,
            static_cast<unsigned long long>(result.seed), result.attempts,
            result.quarantined ? " QUARANTINED" : "");
        std::printf("  snapshot: %s\n", path.filename().string().c_str());
        if (result.crawl.has_value()) {
          const auto& visits = result.crawl->visits;
          for (size_t v = 0; v < visits.size(); ++v) {
            const core::VisitRecord& rec = visits[v];
            const bool in_native = rec.native_tag == tag &&
                                   ordinal >= rec.native_flow_begin &&
                                   ordinal < rec.native_flow_end;
            const bool in_engine = rec.engine_tag == tag &&
                                   ordinal >= rec.engine_flow_begin &&
                                   ordinal < rec.engine_flow_end;
            if (!in_native && !in_engine) continue;
            std::string fault = rec.fault_cause.empty()
                                    ? std::string()
                                    : ", fault=" + rec.fault_cause;
            std::printf(
                "  visit: #%zu %s (%s, attempts=%d%s%s)\n", v,
                rec.hostname.c_str(), rec.ok ? "ok" : "failed",
                rec.attempts, fault.c_str(),
                rec.incognito_honored ? "" : ", incognito NOT honored");
            break;
          }
        }
        std::printf(
            "  flow: [%s] %s %s -> %d (%s store, origin=%s%s%s)\n",
            util::FormatTimestamp(flow.time).c_str(),
            std::string(net::MethodName(flow.method)).c_str(),
            std::string(flow.url.text()).c_str(), flow.response_status,
            side.role,
            std::string(proxy::TrafficOriginName(flow.origin)).c_str(),
            flow.fault_injected ? ", fault-injected" : "",
            flow.blocked ? ", blocked" : "");

        if (auto journal_path = args.Option("journal")) {
          std::ifstream journal(*journal_path, std::ios::binary);
          if (!journal) {
            std::fprintf(stderr, "cannot read %s\n",
                         journal_path->c_str());
            return 1;
          }
          const std::string needle =
              "\"" + obs::FlowIdHex(uid) + "\"";
          std::string line;
          size_t matches = 0;
          while (std::getline(journal, line)) {
            if (line.find(needle) != std::string::npos) {
              std::printf("  journal: %s\n", line.c_str());
              ++matches;
            }
          }
          if (matches == 0) {
            std::printf("  journal: no events mention this flow\n");
          }
        }
        return 0;
      }
    }
  }
  std::fprintf(stderr, "flow %s not found in %s (%zu snapshots)\n",
               obs::FlowIdHex(uid).c_str(), cache_dir.c_str(),
               snaps.size());
  return 1;
}

// Compares a metrics/bench JSON file against a checked-in baseline
// with tolerance bands (obs::BaselineGate). CI runs this over every
// bench/baselines/*.json; a regression fails the build.
int CmdBaselineCheck(const util::Args& args) {
  auto baseline_path = args.Option("baseline");
  auto current_path = args.Option("current");
  if (!baseline_path || !current_path) {
    std::fprintf(stderr, "baseline-check needs --baseline and --current\n");
    return 2;
  }
  auto read = [](const std::string& path) -> std::optional<std::string> {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  auto baseline = read(*baseline_path);
  if (!baseline) {
    std::fprintf(stderr, "cannot read %s\n", baseline_path->c_str());
    return 1;
  }
  auto current = read(*current_path);
  if (!current) {
    std::fprintf(stderr, "cannot read %s\n", current_path->c_str());
    return 1;
  }
  obs::BaselineResult result =
      obs::BaselineGate::Compare(*baseline, *current);
  std::printf("%s", result.Render().c_str());
  return result.ok ? 0 : 1;
}

int CmdSitelist(const util::Args& args) {
  auto framework = MakeFramework(
      static_cast<int>(args.IntOptionOr("sites", 1000)));
  std::string list = web::SaveSiteList(framework.catalog());
  if (auto out = args.Option("out")) {
    if (!WriteFile(*out, list)) {
      std::fprintf(stderr, "cannot write %s\n", out->c_str());
      return 1;
    }
    std::printf("wrote %zu sites to %s\n",
                framework.catalog().sites().size(), out->c_str());
  } else {
    std::printf("%s", list.c_str());
  }
  return 0;
}

int CmdRunManifest(const util::Args& args) {
  std::string path = args.Positional(1);
  if (path.empty()) {
    std::fprintf(stderr, "run-manifest needs a file\n");
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto manifest = analysis::Manifest::FromJson(text);
  if (!manifest) {
    std::fprintf(stderr, "invalid manifest: %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "running %zu entries over %d sites...\n",
               manifest->entries.size(),
               manifest->popular_sites + manifest->sensitive_sites);
  auto result = analysis::RunManifest(*manifest);
  std::string rendered = result.ToJson();
  if (auto out_path = args.Option("out")) {
    if (!WriteFile(*out_path, rendered)) {
      std::fprintf(stderr, "cannot write %s\n", out_path->c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path->c_str());
  } else {
    std::printf("%s\n", rendered.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = util::Args::Parse(argc, argv);
  std::string command = args.Positional(0);
  if (command == "browsers") return CmdBrowsers();
  if (command == "crawl") return CmdCrawl(args);
  if (command == "idle") return CmdIdle(args);
  if (command == "fleet") return CmdFleet(args);
  if (command == "validate-telemetry") return CmdValidateTelemetry(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "baseline-check") return CmdBaselineCheck(args);
  if (command == "sitelist") return CmdSitelist(args);
  if (command == "run-manifest") return CmdRunManifest(args);
  return Usage();
}
