// Quickstart: stand up the Panoptes testbed, crawl a handful of sites
// with one browser, and show the engine/native split plus what the
// browser told its vendor about the user.
//
//   ./build/examples/quickstart [browser-name]
#include <cstdio>
#include <string>

#include "analysis/flow_index.h"
#include "analysis/geoip.h"
#include "analysis/historyleak.h"
#include "analysis/pii.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "browser/profiles.h"
#include "core/campaign.h"
#include "core/framework.h"

using namespace panoptes;

int main(int argc, char** argv) {
  std::string browser_name = argc > 1 ? argv[1] : "Yandex";
  const browser::BrowserSpec* spec = browser::FindSpec(browser_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown browser: %s\nknown:", browser_name.c_str());
    for (const auto& s : browser::AllBrowserSpecs()) {
      std::fprintf(stderr, " %s", s.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  // A small testbed: 40 popular + 20 sensitive sites.
  core::FrameworkOptions options;
  options.catalog.popular_count = 40;
  options.catalog.sensitive_count = 20;
  core::Framework framework(options);

  std::vector<const web::Site*> sites;
  for (const auto& site : framework.catalog().sites()) {
    sites.push_back(&site);
    if (sites.size() == 25) break;
  }

  std::printf("Panoptes quickstart — crawling %zu sites with %s %s\n\n",
              sites.size(), spec->name.c_str(), spec->version.c_str());

  auto result = core::RunCrawl(framework, *spec, sites);

  auto requests = analysis::ComputeRequestStats(result);
  auto volume = analysis::ComputeVolumeStats(result);
  std::printf("engine requests : %llu\n",
              (unsigned long long)requests.engine_requests);
  std::printf("native requests : %llu\n",
              (unsigned long long)requests.native_requests);
  std::printf("native ratio    : %s\n",
              analysis::Ratio(requests.native_ratio).c_str());
  std::printf("outgoing bytes  : engine %s, native %s (+%s)\n\n",
              analysis::Bytes(volume.engine_bytes).c_str(),
              analysis::Bytes(volume.native_bytes).c_str(),
              analysis::Percent(volume.native_extra_fraction).c_str());

  // Who received the browsing history?
  std::vector<net::Url> visited;
  for (const auto* site : sites) visited.push_back(site->landing_url);
  analysis::HistoryLeakDetector detector(visited);
  auto native_leaks =
      detector.Scan(*result.native_flows, *result.native_index);
  auto engine_leaks = detector.Scan(*result.engine_flows,
                                    *result.engine_index,
                                    /*engine_store=*/true);

  analysis::GeoIpDb geo(framework.geo_plan().ranges());
  if (native_leaks.empty() && engine_leaks.empty()) {
    std::printf("no browsing-history leak detected\n");
  }
  for (const auto* leaks : {&native_leaks, &engine_leaks}) {
    for (const auto& leak : *leaks) {
      auto transfers = analysis::ClassifyTransfers(
          leak.via_engine_injection ? *result.engine_index
                                    : *result.native_index,
          {leak.destination_host}, geo);
      std::string where = transfers.empty()
                              ? "?"
                              : transfers.front().country_name +
                                    (transfers.front().outside_eu
                                         ? " (outside EU!)"
                                         : " (EU)");
      std::printf("history leak -> %s  [%s, %s, %llu reports%s%s]  %s\n",
                  leak.destination_host.c_str(),
                  std::string(LeakGranularityName(leak.granularity)).c_str(),
                  leak.encoding.c_str(),
                  (unsigned long long)leak.report_count,
                  leak.persistent_identifier ? ", persistent id" : "",
                  leak.via_engine_injection ? ", via JS injection" : "",
                  where.c_str());
    }
  }

  // What device data left the phone?
  analysis::PiiScanner scanner(framework.device().profile());
  auto pii = scanner.Scan(*result.native_index);
  std::printf("\nPII fields leaked natively: %zu\n", pii.LeakCount());
  for (const auto& evidence : pii.evidence) {
    std::printf("  %-15s -> %-28s %s\n",
                std::string(PiiFieldName(evidence.field)).c_str(),
                evidence.host.c_str(), evidence.sample.c_str());
  }

  std::printf("\ntaint leaks seen by servers: %llu (must be 0)\n",
              (unsigned long long)framework.network().taint_leaks());
  return 0;
}
