// Sensitive-content exposure report (paper §3.2 + §3.4): crawl the four
// Curlie-style sensitive categories with the full-URL-leaking browsers
// and show exactly which health/religion/sexuality/society visits
// ended up on which foreign servers.
//
//   ./build/examples/sensitive_leaks
#include <cstdio>

#include "analysis/geoip.h"
#include "analysis/historyleak.h"
#include "analysis/report.h"
#include "browser/profiles.h"
#include "core/campaign.h"
#include "core/framework.h"
#include "util/base64.h"

using namespace panoptes;

int main() {
  core::FrameworkOptions options;
  options.catalog.popular_count = 0;
  options.catalog.sensitive_count = 24;  // 6 per category
  core::Framework framework(options);
  analysis::GeoIpDb geo(framework.geo_plan().ranges());

  std::printf("What does a vendor learn when the user browses sensitive "
              "content?\n(vantage point: %s, an EU member state)\n\n",
              framework.device().profile().country.c_str());

  for (const char* name : {"Yandex", "QQ", "UC International"}) {
    const auto* spec = browser::FindSpec(name);
    std::vector<const web::Site*> sites;
    for (const auto& site : framework.catalog().sites()) sites.push_back(&site);

    auto result = core::RunCrawl(framework, *spec, sites);

    std::vector<net::Url> visited;
    for (const auto* site : sites) visited.push_back(site->landing_url);
    analysis::HistoryLeakDetector detector(visited);

    std::printf("=== %s ===\n", name);
    for (const auto* store :
         {result.native_flows.get(), result.engine_flows.get()}) {
      bool engine = store == result.engine_flows.get();
      for (const auto& leak : detector.Scan(*store, engine)) {
        if (leak.granularity != analysis::LeakGranularity::kFullUrl) continue;
        auto transfers =
            analysis::ClassifyTransfers(*store, {leak.destination_host}, geo);
        std::printf("%s (%s%s) received %llu full URLs%s:\n",
                    leak.destination_host.c_str(),
                    transfers.empty() ? "?"
                                      : transfers.front().country_name.c_str(),
                    (!transfers.empty() && transfers.front().outside_eu)
                        ? ", OUTSIDE the EU"
                        : "",
                    (unsigned long long)leak.report_count,
                    leak.via_engine_injection ? " via an injected script"
                                              : "");
      }
    }

    // Show concrete reported URLs per sensitive category.
    analysis::TextTable table({"Category", "Example visit reported"});
    for (auto category :
         {web::SiteCategory::kHealth, web::SiteCategory::kReligion,
          web::SiteCategory::kSexuality, web::SiteCategory::kSociety}) {
      const web::Site* example = nullptr;
      for (const auto& site : framework.catalog().sites()) {
        if (site.category == category) {
          example = &site;
          break;
        }
      }
      if (example == nullptr) continue;
      table.AddRow({std::string(web::SiteCategoryName(category)),
                    example->landing_url.Serialize()});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("Sample of what sba.yandex.net actually stores (Base64 "
              "decoded server-side):\n  %s\n",
              framework.vendor_world().sba_yandex->last_decoded_url().c_str());
  return 0;
}
