// Incognito reality check (paper §3.2): crawl the same sites twice —
// normal mode vs incognito — and diff what left the device natively.
// The browsers that report the browsing history keep doing so.
//
//   ./build/examples/incognito_check [browser-name]
#include <cstdio>
#include <string>

#include "analysis/historyleak.h"
#include "analysis/report.h"
#include "browser/profiles.h"
#include "core/campaign.h"
#include "core/framework.h"

using namespace panoptes;

int main(int argc, char** argv) {
  std::string browser_name = argc > 1 ? argv[1] : "Opera";
  const auto* spec = browser::FindSpec(browser_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown browser: %s\n", browser_name.c_str());
    return 1;
  }

  core::FrameworkOptions options;
  options.catalog.popular_count = 20;
  options.catalog.sensitive_count = 10;
  core::Framework framework(options);
  std::vector<const web::Site*> sites;
  for (const auto& site : framework.catalog().sites()) sites.push_back(&site);

  std::printf("incognito check: %s (mode %s)\n\n", spec->name.c_str(),
              spec->has_incognito ? "available" : "NOT AVAILABLE");

  core::CrawlOptions normal;
  core::CrawlOptions incognito;
  incognito.incognito = true;

  auto normal_run = core::RunCrawl(framework, *spec, sites, normal);
  auto incognito_run = core::RunCrawl(framework, *spec, sites, incognito);

  std::vector<net::Url> visited;
  for (const auto* site : sites) visited.push_back(site->landing_url);
  analysis::HistoryLeakDetector detector(visited);

  auto describe = [&](const core::CrawlResult& result, const char* label) {
    std::printf("--- %s ---\n", label);
    std::printf("native requests: %llu\n",
                (unsigned long long)result.native_flows->size());
    size_t leak_destinations = 0;
    for (const auto* store :
         {result.native_flows.get(), result.engine_flows.get()}) {
      bool engine = store == result.engine_flows.get();
      for (const auto& leak : detector.Scan(*store, engine)) {
        ++leak_destinations;
        std::printf("  leak -> %-26s [%s, %llu reports%s]\n",
                    leak.destination_host.c_str(),
                    std::string(LeakGranularityName(leak.granularity)).c_str(),
                    (unsigned long long)leak.report_count,
                    leak.via_engine_injection ? ", JS injection" : "");
      }
    }
    if (leak_destinations == 0) std::printf("  no history leak detected\n");
    std::printf("\n");
    return leak_destinations;
  };

  size_t normal_leaks = describe(normal_run, "normal mode");
  size_t incog_leaks = describe(
      incognito_run, incognito_run.incognito_effective
                         ? "incognito mode"
                         : "incognito requested (mode missing!)");

  if (!spec->has_incognito) {
    std::printf("verdict: %s offers no incognito mode at all — every "
                "visit is reported regardless (paper footnote 5).\n",
                spec->name.c_str());
  } else if (incog_leaks >= normal_leaks && normal_leaks > 0) {
    std::printf("verdict: incognito changes NOTHING about the native "
                "reporting — the private-mode promise only covers local "
                "state (paper §3.2).\n");
  } else if (normal_leaks == 0) {
    std::printf("verdict: %s does not report the browsing history in "
                "either mode.\n",
                spec->name.c_str());
  } else {
    std::printf("verdict: incognito reduced the reporting (unexpected "
                "for the paper's dataset).\n");
  }
  return 0;
}
